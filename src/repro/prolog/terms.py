"""Prolog term representation.

Terms are immutable. The four concrete kinds are:

* :class:`Var` — a logic variable, identified by name (source level) or
  by an integer stamp (renamed-apart runtime variables).
* :class:`Atom` — a nullary constant, e.g. ``foo``, ``[]``, ``+``.
* :class:`Int` — an integer constant.
* :class:`Struct` — a compound term ``f(t1, ..., tn)`` with ``n >= 1``.

Lists use the conventional ``'.'/2`` functor and the ``[]`` atom.  The
pretty printer displays list cells with bracket notation; the type
analyser displays the ``'.'/2`` functor as ``cons`` to match the paper.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Tuple, Union

__all__ = [
    "Term",
    "Var",
    "Atom",
    "Int",
    "Struct",
    "NIL",
    "CONS",
    "make_list",
    "list_elements",
    "term_variables",
    "term_size",
    "term_depth",
    "is_list_term",
    "functor_of",
    "format_term",
]


@dataclass(frozen=True)
class Var:
    """A logic variable.  ``name`` is the printed name, ``stamp`` makes
    renamed-apart copies distinct (-1 for source-level variables)."""

    name: str
    stamp: int = -1

    def __repr__(self) -> str:
        if self.stamp < 0:
            return self.name
        return "_%s%d" % (self.name, self.stamp)


@dataclass(frozen=True)
class Atom:
    """A nullary constant."""

    name: str

    def __repr__(self) -> str:
        return self.name


@dataclass(frozen=True)
class Int:
    """An integer constant."""

    value: int

    def __repr__(self) -> str:
        return str(self.value)


@dataclass(frozen=True)
class Struct:
    """A compound term ``name(args...)`` with at least one argument."""

    name: str
    args: Tuple["Term", ...]

    def __post_init__(self) -> None:
        if not self.args:
            raise ValueError("Struct requires at least one argument; use Atom")

    @property
    def arity(self) -> int:
        return len(self.args)

    def __repr__(self) -> str:
        return format_term(self)


Term = Union[Var, Atom, Int, Struct]

NIL = Atom("[]")
CONS = "."


def make_list(elements, tail: Term = NIL) -> Term:
    """Build a Prolog list term from a Python iterable."""
    result = tail
    for element in reversed(list(elements)):
        result = Struct(CONS, (element, result))
    return result


def list_elements(term: Term):
    """Return (elements, tail) of a list term; tail is NIL for proper lists."""
    elements = []
    while isinstance(term, Struct) and term.name == CONS and term.arity == 2:
        elements.append(term.args[0])
        term = term.args[1]
    return elements, term


def is_list_term(term: Term) -> bool:
    """True iff ``term`` is a proper (nil-terminated) list."""
    _, tail = list_elements(term)
    return tail == NIL


def functor_of(term: Term):
    """Return the (name, arity) pair of a non-variable term.

    Integers get the pseudo-functor ``(str(value), 0)``.
    """
    if isinstance(term, Atom):
        return (term.name, 0)
    if isinstance(term, Int):
        return (str(term.value), 0)
    if isinstance(term, Struct):
        return (term.name, term.arity)
    raise TypeError("variable has no functor: %r" % (term,))


def term_variables(term: Term) -> list:
    """All variables of ``term`` in first-occurrence order."""
    seen = []
    seen_set = set()
    stack = [term]
    while stack:
        t = stack.pop()
        if isinstance(t, Var):
            if t not in seen_set:
                seen_set.add(t)
                seen.append(t)
        elif isinstance(t, Struct):
            stack.extend(reversed(t.args))
    return seen


def _walk(term: Term) -> Iterator[Term]:
    stack = [term]
    while stack:
        t = stack.pop()
        yield t
        if isinstance(t, Struct):
            stack.extend(t.args)


def term_size(term: Term) -> int:
    """Number of symbol occurrences in ``term``."""
    return sum(1 for _ in _walk(term))


def term_depth(term: Term) -> int:
    """Depth of ``term``; constants and variables have depth 1."""
    if isinstance(term, Struct):
        return 1 + max(term_depth(a) for a in term.args)
    return 1


_SOLO = set("!,;|")
_SYMBOL_CHARS = set("+-*/\\^<>=~:.?@#&$")


def _atom_needs_quotes(name: str) -> bool:
    if name == "":
        return True
    if name in ("[]", "{}", "!", ";", ","):
        return False
    first = name[0]
    if first.islower() and all(c.isalnum() or c == "_" for c in name):
        return False
    if all(c in _SYMBOL_CHARS for c in name):
        return False
    return True


def format_atom(name: str) -> str:
    if _atom_needs_quotes(name):
        escaped = name.replace("\\", "\\\\").replace("'", "\\'")
        return "'%s'" % escaped
    return name


def format_term(term: Term) -> str:
    """Render a term in (operator-free) canonical Prolog syntax, with
    bracket notation for lists."""
    if isinstance(term, Var):
        return repr(term)
    if isinstance(term, Atom):
        return format_atom(term.name)
    if isinstance(term, Int):
        return str(term.value)
    if isinstance(term, Struct):
        if term.name == CONS and term.arity == 2:
            elements, tail = list_elements(term)
            inner = ",".join(format_term(e) for e in elements)
            if tail == NIL:
                return "[%s]" % inner
            return "[%s|%s]" % (inner, format_term(tail))
        args = ",".join(format_term(a) for a in term.args)
        return "%s(%s)" % (format_atom(term.name), args)
    raise TypeError("not a term: %r" % (term,))
