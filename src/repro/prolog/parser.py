"""Operator-precedence parser for Prolog.

Turns token streams from :mod:`repro.prolog.reader` into
:class:`repro.prolog.terms.Term` values, honouring the operator table.
The top-level entry points are :func:`parse_term`, :func:`parse_clauses`
and :func:`parse_program_text`.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from .operators import MAX_PRIORITY, OperatorTable, default_operators
from .reader import Token, tokenize
from .terms import Atom, Int, Struct, Term, Var, make_list

__all__ = ["ParseError", "Parser", "parse_term", "parse_clauses",
           "parse_clauses_located"]

_ARG_PRIORITY = 999  # max priority inside argument lists / list elements


class ParseError(SyntaxError):
    def __init__(self, message: str, token: Token) -> None:
        super().__init__(
            "%s at line %d, column %d (near %r)"
            % (message, token.line, token.column, token.text or "<eof>"))
        self.token = token


class Parser:
    """Parses one clause (terminated by the end dot) at a time."""

    def __init__(self, tokens: List[Token],
                 operators: Optional[OperatorTable] = None) -> None:
        self.tokens = tokens
        self.pos = 0
        self.ops = operators if operators is not None else default_operators()
        self.varmap: Dict[str, Var] = {}
        self._anon_counter = 0
        #: source line of the most recently started clause
        self.clause_line = 0

    # -- token plumbing ---------------------------------------------------

    def peek(self, offset: int = 0) -> Token:
        index = min(self.pos + offset, len(self.tokens) - 1)
        return self.tokens[index]

    def advance(self) -> Token:
        token = self.tokens[self.pos]
        if token.kind != "eof":
            self.pos += 1
        return token

    def expect(self, kind: str, text: Optional[str] = None) -> Token:
        token = self.peek()
        if token.kind != kind or (text is not None and token.text != text):
            raise ParseError("expected %s" % (text or kind), token)
        return self.advance()

    def at_eof(self) -> bool:
        return self.peek().kind == "eof"

    # -- variables --------------------------------------------------------

    def _variable(self, name: str) -> Var:
        if name == "_":
            self._anon_counter += 1
            return Var("_G%d" % self._anon_counter)
        var = self.varmap.get(name)
        if var is None:
            var = Var(name)
            self.varmap[name] = var
        return var

    # -- term parsing -----------------------------------------------------

    def parse_term(self, max_priority: int = MAX_PRIORITY) -> Term:
        left, left_priority = self._parse_primary(max_priority)
        return self._parse_operators(left, left_priority, max_priority)

    def _parse_operators(self, left: Term, left_priority: int,
                         max_priority: int) -> Term:
        while True:
            token = self.peek()
            if token.kind != "atom":
                return left
            name = token.text
            infix = self.ops.infix(name)
            postfix = self.ops.postfix(name)
            if infix is not None and infix.priority <= max_priority \
                    and left_priority <= infix.left_max():
                self.advance()
                right = self.parse_term(infix.right_max())
                display = ";" if name == "|" else name
                left = Struct(display, (left, right))
                left_priority = infix.priority
                continue
            if postfix is not None and postfix.priority <= max_priority \
                    and left_priority <= postfix.left_max():
                self.advance()
                left = Struct(name, (left,))
                left_priority = postfix.priority
                continue
            return left

    def _parse_primary(self, max_priority: int) -> Tuple[Term, int]:
        token = self.peek()
        if token.kind == "var":
            self.advance()
            return self._variable(token.text), 0
        if token.kind == "int":
            self.advance()
            return Int(token.value), 0
        if token.kind == "string":
            self.advance()
            codes = [Int(ord(c)) for c in token.text]
            return make_list(codes), 0
        if token.kind == "punct":
            if token.text == "(":
                self.advance()
                inner = self.parse_term(MAX_PRIORITY)
                self.expect("punct", ")")
                return inner, 0
            if token.text == "[":
                return self._parse_list(), 0
            if token.text == "{":
                self.advance()
                if self.peek().kind == "punct" and self.peek().text == "}":
                    self.advance()
                    return Atom("{}"), 0
                inner = self.parse_term(MAX_PRIORITY)
                self.expect("punct", "}")
                return Struct("{}", (inner,)), 0
            raise ParseError("unexpected token", token)
        if token.kind == "atom":
            return self._parse_atom_primary(token, max_priority)
        raise ParseError("unexpected token", token)

    def _parse_atom_primary(self, token: Token,
                            max_priority: int) -> Tuple[Term, int]:
        name = token.text
        self.advance()
        nxt = self.peek()

        # Functor application: name immediately followed by '('.
        if nxt.kind == "punct" and nxt.text == "(" and not nxt.layout_before:
            self.advance()
            args = [self.parse_term(_ARG_PRIORITY)]
            while self.peek().kind == "atom" and self.peek().text == ",":
                self.advance()
                args.append(self.parse_term(_ARG_PRIORITY))
            self.expect("punct", ")")
            return Struct(name, tuple(args)), 0

        # Negative number literal: '-' directly before an integer.
        if name == "-" and nxt.kind == "int" and not nxt.layout_before:
            self.advance()
            return Int(-nxt.value), 0

        # Prefix operator attempt.
        prefix = self.ops.prefix(name)
        if prefix is not None and prefix.priority <= max_priority \
                and self._starts_term(nxt):
            operand = self.parse_term(prefix.right_max())
            return Struct(name, (operand,)), prefix.priority

        # Plain atom.  If it is an operator used as an atom, it carries
        # its priority (relevant for things like (:-)).
        priority = 0
        if self.ops.is_operator(name):
            infix = self.ops.infix(name)
            pre = self.ops.prefix(name)
            priority = max(op.priority for op in (infix, pre) if op)
        return Atom(name), priority

    def _starts_term(self, token: Token) -> bool:
        """Can ``token`` begin a term (so a prefix op applies)?"""
        if token.kind in ("var", "int", "string"):
            return True
        if token.kind == "punct":
            return token.text in ("(", "[", "{")
        if token.kind == "atom":
            if token.text == ",":
                return False
            # An infix-only operator cannot start a term unless it could
            # itself be an atom operand; accept and let recursion decide.
            return True
        return False

    def _parse_list(self) -> Term:
        self.expect("punct", "[")
        if self.peek().kind == "punct" and self.peek().text == "]":
            self.advance()
            return Atom("[]")
        elements = [self.parse_term(_ARG_PRIORITY)]
        while self.peek().kind == "atom" and self.peek().text == ",":
            self.advance()
            elements.append(self.parse_term(_ARG_PRIORITY))
        tail: Term = Atom("[]")
        if self.peek().kind == "atom" and self.peek().text == "|":
            self.advance()
            tail = self.parse_term(_ARG_PRIORITY)
        self.expect("punct", "]")
        return make_list(elements, tail)

    # -- clause-level parsing ---------------------------------------------

    def parse_clause(self) -> Optional[Term]:
        """Parse one clause term (up to the end dot); None at eof.
        The variable map is reset per clause; the source line of the
        clause's first token lands in :attr:`clause_line` (the anchor
        assertion blame reports point at)."""
        if self.at_eof():
            return None
        self.varmap = {}
        self.clause_line = self.peek().line
        term = self.parse_term(MAX_PRIORITY)
        self.expect("end")
        return term


def parse_term(text: str, operators: Optional[OperatorTable] = None) -> Term:
    """Parse a single term from ``text`` (trailing dot optional)."""
    tokens = tokenize(text)
    parser = Parser(tokens, operators)
    term = parser.parse_term(MAX_PRIORITY)
    if parser.peek().kind == "end":
        parser.advance()
    if not parser.at_eof():
        raise ParseError("trailing input", parser.peek())
    return term


def parse_clauses(text: str,
                  operators: Optional[OperatorTable] = None) -> List[Term]:
    """Parse all clause terms in ``text``, applying ``:- op(...)``
    directives to the operator table as they are encountered."""
    return [term for term, _ in parse_clauses_located(text, operators)]


def parse_clauses_located(text: str,
                          operators: Optional[OperatorTable] = None
                          ) -> List[Tuple[Term, int]]:
    """Like :func:`parse_clauses`, but each clause term comes with the
    1-based source line of its first token — the anchor the assertion
    checker's blame reports render."""
    ops = operators if operators is not None else default_operators()
    parser = Parser(tokenize(text), ops)
    clauses: List[Tuple[Term, int]] = []
    while True:
        clause = parser.parse_clause()
        if clause is None:
            return clauses
        if (isinstance(clause, Struct) and clause.name == ":-"
                and clause.arity == 1):
            directive = clause.args[0]
            if (isinstance(directive, Struct) and directive.name == "op"
                    and directive.arity == 3):
                pri, typ, names = directive.args
                if isinstance(pri, Int) and isinstance(typ, Atom):
                    from .terms import list_elements
                    name_terms, _ = list_elements(names)
                    if not name_terms:
                        name_terms = [names]
                    for nt in name_terms:
                        if isinstance(nt, Atom):
                            ops.add(nt.name, pri.value, typ.name)
        clauses.append((clause, parser.clause_line))
