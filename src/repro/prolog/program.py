"""Program representation: clauses, procedures, programs.

A :class:`Program` groups parsed clauses by predicate indicator
``(name, arity)`` and keeps directives separately.  The analyser works
on the *normalized* form produced by :mod:`repro.prolog.normalize`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from .operators import OperatorTable
from .parser import parse_clauses_located
from .terms import Atom, Int, Struct, Term, Var, format_term

__all__ = ["PredId", "Clause", "Procedure", "Program", "parse_program"]

PredId = Tuple[str, int]


def _split_conjunction(term: Term) -> List[Term]:
    """Flatten a ','/2 conjunction into a goal list; ``true`` → []."""
    if isinstance(term, Atom) and term.name == "true":
        return []
    if isinstance(term, Struct) and term.name == "," and term.arity == 2:
        return _split_conjunction(term.args[0]) + \
            _split_conjunction(term.args[1])
    return [term]


@dataclass
class Clause:
    """A source clause ``head :- body`` (body is a goal list).
    ``line`` is the 1-based source line of the clause's first token
    (None when the clause was built programmatically) — the anchor
    assertion blame slices report."""

    head: Term
    body: List[Term]
    line: Optional[int] = None

    @property
    def pred(self) -> PredId:
        if isinstance(self.head, Atom):
            return (self.head.name, 0)
        if isinstance(self.head, Struct):
            return (self.head.name, self.head.arity)
        raise ValueError("clause head is not callable: %r" % (self.head,))

    def __repr__(self) -> str:
        if not self.body:
            return format_term(self.head) + "."
        goals = ", ".join(format_term(g) for g in self.body)
        return "%s :- %s." % (format_term(self.head), goals)


@dataclass
class Procedure:
    """All clauses for one predicate, in source order."""

    pred: PredId
    clauses: List[Clause] = field(default_factory=list)

    @property
    def name(self) -> str:
        return self.pred[0]

    @property
    def arity(self) -> int:
        return self.pred[1]


@dataclass
class Program:
    """A Prolog program: procedures plus directives, in source order."""

    procedures: Dict[PredId, Procedure] = field(default_factory=dict)
    directives: List[Term] = field(default_factory=list)
    #: source line per directive, parallel to ``directives`` (0 when
    #: unknown — directives added programmatically).
    directive_lines: List[int] = field(default_factory=list)
    order: List[PredId] = field(default_factory=list)

    def add_clause(self, clause: Clause) -> None:
        pred = clause.pred
        if pred not in self.procedures:
            self.procedures[pred] = Procedure(pred)
            self.order.append(pred)
        self.procedures[pred].clauses.append(clause)

    def procedure(self, pred: PredId) -> Optional[Procedure]:
        return self.procedures.get(pred)

    def defined(self, pred: PredId) -> bool:
        return pred in self.procedures

    @property
    def num_procedures(self) -> int:
        return len(self.procedures)

    @property
    def num_clauses(self) -> int:
        return sum(len(p.clauses) for p in self.procedures.values())

    def all_clauses(self) -> List[Clause]:
        return [c for pid in self.order
                for c in self.procedures[pid].clauses]

    def __repr__(self) -> str:
        return "<Program: %d procedures, %d clauses>" % (
            self.num_procedures, self.num_clauses)


def clause_from_term(term: Term, line: Optional[int] = None) -> Clause:
    """Interpret a parsed term as a clause (fact or rule)."""
    if isinstance(term, Struct) and term.name == ":-" and term.arity == 2:
        return Clause(term.args[0], _split_conjunction(term.args[1]), line)
    return Clause(term, [], line)


def parse_program(text: str,
                  operators: Optional[OperatorTable] = None) -> Program:
    """Parse Prolog source text into a :class:`Program`."""
    program = Program()
    for term, line in parse_clauses_located(text, operators):
        if isinstance(term, Struct) and term.name == ":-" and term.arity == 1:
            program.directives.append(term.args[0])
            program.directive_lines.append(line)
            continue
        program.add_clause(clause_from_term(term, line))
    return program
