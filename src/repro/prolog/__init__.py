"""Prolog front end: terms, tokenizer, parser, programs, normalization,
and a reference SLD interpreter used as the concrete-semantics oracle."""

from .terms import (Atom, Int, Struct, Term, Var, NIL, CONS, make_list,
                    list_elements, is_list_term, functor_of, format_term,
                    term_variables)
from .reader import Token, TokenizeError, tokenize
from .operators import OperatorTable, default_operators
from .parser import ParseError, parse_term, parse_clauses
from .program import Clause, PredId, Procedure, Program, parse_program
from .normalize import (NBuild, NCall, NGoal, NUnify, NormClause,
                        NormProcedure, NormProgram, normalize_clause,
                        normalize_program)
from .interpreter import Bindings, SolveLimits, Solver, solve

__all__ = [
    "Atom", "Int", "Struct", "Term", "Var", "NIL", "CONS",
    "make_list", "list_elements", "is_list_term", "functor_of",
    "format_term", "term_variables",
    "Token", "TokenizeError", "tokenize",
    "OperatorTable", "default_operators",
    "ParseError", "parse_term", "parse_clauses",
    "Clause", "PredId", "Procedure", "Program", "parse_program",
    "NBuild", "NCall", "NGoal", "NUnify", "NormClause", "NormProcedure",
    "NormProgram", "normalize_clause", "normalize_program",
    "Bindings", "SolveLimits", "Solver", "solve",
]
