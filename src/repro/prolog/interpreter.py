"""A small SLD-resolution interpreter.

Used as the *concrete semantics oracle*: the paper's soundness claim is
that every concrete success substitution is described by the inferred
output pattern, and the test suite checks exactly that by running
queries here and testing membership of the answers in the inferred type
graphs.

Design choices (all documented deviations are over-approximated by the
analyser as well, so the soundness comparison stays meaningful):

* left-to-right selection, clause order, depth-first with bounds;
* occur-check **on** (the abstract domain assumes finite trees);
* cut is ignored (the analyser treats it as a no-op, so the cut-free
  success set is the right oracle);
* a pragmatic set of builtins (unification, arithmetic, comparison,
  type tests).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Tuple

from .program import PredId, Program
from .terms import Atom, Int, Struct, Term, Var, make_list

__all__ = ["Solver", "SolveLimits", "solve", "Bindings"]

Bindings = Dict[Var, Term]


class DepthLimit(Exception):
    """Internal: raised when the step budget is exhausted."""


@dataclass
class SolveLimits:
    max_depth: int = 400
    max_solutions: int = 200
    max_steps: int = 200000


def walk(term: Term, bindings: Bindings) -> Term:
    """Follow variable bindings to the representative term."""
    while isinstance(term, Var):
        bound = bindings.get(term)
        if bound is None:
            return term
        term = bound
    return term


def resolve(term: Term, bindings: Bindings) -> Term:
    """Fully dereference ``term`` (deep walk)."""
    term = walk(term, bindings)
    if isinstance(term, Struct):
        return Struct(term.name, tuple(resolve(a, bindings)
                                       for a in term.args))
    return term


def occurs(var: Var, term: Term, bindings: Bindings) -> bool:
    term = walk(term, bindings)
    if term == var:
        return True
    if isinstance(term, Struct):
        return any(occurs(var, a, bindings) for a in term.args)
    return False


def unify(a: Term, b: Term, bindings: Bindings,
          trail: List[Var]) -> bool:
    """Destructive unification with trail for backtracking."""
    stack = [(a, b)]
    while stack:
        x, y = stack.pop()
        x = walk(x, bindings)
        y = walk(y, bindings)
        if x == y:
            continue
        if isinstance(x, Var):
            if occurs(x, y, bindings):
                return False
            bindings[x] = y
            trail.append(x)
            continue
        if isinstance(y, Var):
            if occurs(y, x, bindings):
                return False
            bindings[y] = x
            trail.append(y)
            continue
        if isinstance(x, Struct) and isinstance(y, Struct) \
                and x.name == y.name and x.arity == y.arity:
            stack.extend(zip(x.args, y.args))
            continue
        return False
    return True


def undo(trail: List[Var], mark: int, bindings: Bindings) -> None:
    while len(trail) > mark:
        del bindings[trail.pop()]


def rename(term: Term, stamp: int, cache: Dict[Var, Var]) -> Term:
    if isinstance(term, Var):
        renamed = cache.get(term)
        if renamed is None:
            renamed = Var(term.name, stamp)
            cache[term] = renamed
        return renamed
    if isinstance(term, Struct):
        return Struct(term.name, tuple(rename(a, stamp, cache)
                                       for a in term.args))
    return term


def eval_arith(term: Term, bindings: Bindings) -> int:
    """Evaluate an arithmetic expression to an integer."""
    term = walk(term, bindings)
    if isinstance(term, Int):
        return term.value
    if isinstance(term, Struct):
        args = [eval_arith(a, bindings) for a in term.args]
        ops2 = {"+": lambda a, b: a + b, "-": lambda a, b: a - b,
                "*": lambda a, b: a * b, "//": lambda a, b: a // b,
                "/": lambda a, b: a // b, "mod": lambda a, b: a % b,
                "min": min, "max": max}
        if term.arity == 2 and term.name in ops2:
            return ops2[term.name](args[0], args[1])
        if term.arity == 1 and term.name == "-":
            return -args[0]
        if term.arity == 1 and term.name == "+":
            return args[0]
        if term.arity == 1 and term.name == "abs":
            return abs(args[0])
    raise ValueError("cannot evaluate arithmetic term: %r" % (term,))


_COMPARISONS = {
    "<": lambda a, b: a < b,
    ">": lambda a, b: a > b,
    "=<": lambda a, b: a <= b,
    ">=": lambda a, b: a >= b,
    "=:=": lambda a, b: a == b,
    "=\\=": lambda a, b: a != b,
}


class Solver:
    """Depth-first SLD solver over a :class:`Program`."""

    def __init__(self, program: Program,
                 limits: Optional[SolveLimits] = None) -> None:
        self.program = program
        self.limits = limits if limits is not None else SolveLimits()
        self._stamp = 0
        self._steps = 0

    def solve(self, goal: Term) -> Iterator[Bindings]:
        """Yield answer bindings (snapshots) for ``goal``."""
        bindings: Bindings = {}
        trail: List[Var] = []
        count = 0
        self._steps = 0
        try:
            for _ in self._solve_goals([goal], bindings, trail, 0):
                yield dict(bindings)
                count += 1
                if count >= self.limits.max_solutions:
                    return
        except DepthLimit:
            return

    def _tick(self) -> None:
        self._steps += 1
        if self._steps > self.limits.max_steps:
            raise DepthLimit()

    def _solve_goals(self, goals: List[Term], bindings: Bindings,
                     trail: List[Var], depth: int) -> Iterator[None]:
        if not goals:
            yield None
            return
        if depth > self.limits.max_depth:
            raise DepthLimit()
        self._tick()
        goal, rest = goals[0], goals[1:]
        goal = walk(goal, bindings)
        for _ in self._solve_one(goal, bindings, trail, depth):
            yield from self._solve_goals(rest, bindings, trail, depth)

    def _solve_one(self, goal: Term, bindings: Bindings,
                   trail: List[Var], depth: int) -> Iterator[None]:
        if isinstance(goal, Var):
            raise ValueError("unbound goal")
        if isinstance(goal, Struct) and goal.name == "," and goal.arity == 2:
            yield from self._solve_goals([goal.args[0], goal.args[1]],
                                         bindings, trail, depth)
            return
        if isinstance(goal, Struct) and goal.name == ";" and goal.arity == 2:
            left, right = goal.args
            lw = walk(left, bindings)
            if isinstance(lw, Struct) and lw.name == "->" and lw.arity == 2:
                yield from self._solve_goals([lw.args[0], lw.args[1]],
                                             bindings, trail, depth)
            else:
                yield from self._solve_goals([left], bindings, trail, depth)
            yield from self._solve_goals([right], bindings, trail, depth)
            return
        if isinstance(goal, Struct) and goal.name == "->" and goal.arity == 2:
            yield from self._solve_goals([goal.args[0], goal.args[1]],
                                         bindings, trail, depth)
            return

        handled = self._builtin(goal, bindings, trail)
        if handled is not None:
            yield from handled
            return

        pred = self._pred_of(goal)
        procedure = self.program.procedure(pred)
        if procedure is None:
            return  # unknown predicate: fail silently
        goal_args = goal.args if isinstance(goal, Struct) else ()
        for clause in procedure.clauses:
            self._tick()
            self._stamp += 1
            cache: Dict[Var, Var] = {}
            head = rename(clause.head, self._stamp, cache)
            body = [rename(g, self._stamp, cache) for g in clause.body]
            head_args = head.args if isinstance(head, Struct) else ()
            mark = len(trail)
            if unify(Struct("$h", tuple(goal_args)) if goal_args else Atom("$h"),
                     Struct("$h", tuple(head_args)) if head_args else Atom("$h"),
                     bindings, trail):
                yield from self._solve_goals(body, bindings, trail, depth + 1)
            undo(trail, mark, bindings)

    @staticmethod
    def _pred_of(goal: Term) -> PredId:
        if isinstance(goal, Atom):
            return (goal.name, 0)
        assert isinstance(goal, Struct)
        return (goal.name, goal.arity)

    def _builtin(self, goal: Term, bindings: Bindings,
                 trail: List[Var]) -> Optional[Iterator[None]]:
        """Return an answer iterator if ``goal`` is a builtin, else None."""
        pred = self._pred_of(goal)
        name, arity = pred
        args = goal.args if isinstance(goal, Struct) else ()

        def unit() -> Iterator[None]:
            yield None

        def empty() -> Iterator[None]:
            return
            yield  # pragma: no cover

        if pred in (("true", 0), ("!", 0), ("nl", 0)):
            return unit()
        if pred in (("fail", 0), ("false", 0)):
            return empty()
        if pred in (("write", 1), ("print", 1), ("write_canonical", 1)):
            return unit()
        if pred == ("=", 2):
            def do_unify() -> Iterator[None]:
                mark = len(trail)
                if unify(args[0], args[1], bindings, trail):
                    yield None
                undo(trail, mark, bindings)
            return do_unify()
        if pred == ("\\=", 2):
            def do_nunify() -> Iterator[None]:
                mark = len(trail)
                ok = unify(args[0], args[1], bindings, trail)
                undo(trail, mark, bindings)
                if not ok:
                    yield None
            return do_nunify()
        if pred == ("==", 2):
            if resolve(args[0], bindings) == resolve(args[1], bindings):
                return unit()
            return empty()
        if pred == ("\\==", 2):
            if resolve(args[0], bindings) != resolve(args[1], bindings):
                return unit()
            return empty()
        if name in _COMPARISONS and arity == 2:
            try:
                lhs = eval_arith(args[0], bindings)
                rhs = eval_arith(args[1], bindings)
            except ValueError:
                return empty()
            return unit() if _COMPARISONS[name](lhs, rhs) else empty()
        if pred == ("is", 2):
            def do_is() -> Iterator[None]:
                try:
                    value = eval_arith(args[1], bindings)
                except ValueError:
                    return
                mark = len(trail)
                if unify(args[0], Int(value), bindings, trail):
                    yield None
                undo(trail, mark, bindings)
            return do_is()
        if pred in (("\\+", 1), ("not", 1)):
            def do_naf() -> Iterator[None]:
                mark = len(trail)
                found = False
                for _ in self._solve_goals([args[0]], bindings, trail, 0):
                    found = True
                    break
                undo(trail, mark, bindings)
                if not found:
                    yield None
            return do_naf()
        if pred == ("call", 1):
            return self._solve_one(walk(args[0], bindings), bindings,
                                   trail, 0)
        if pred == ("var", 1):
            return unit() if isinstance(walk(args[0], bindings), Var) \
                else empty()
        if pred == ("nonvar", 1):
            return empty() if isinstance(walk(args[0], bindings), Var) \
                else unit()
        if pred == ("atom", 1):
            return unit() if isinstance(walk(args[0], bindings), Atom) \
                else empty()
        if pred == ("integer", 1):
            return unit() if isinstance(walk(args[0], bindings), Int) \
                else empty()
        if pred == ("atomic", 1):
            return unit() if isinstance(walk(args[0], bindings),
                                        (Atom, Int)) else empty()
        if pred == ("length", 2):
            def do_length() -> Iterator[None]:
                lst = resolve(args[0], bindings)
                n = 0
                while isinstance(lst, Struct) and lst.name == "." \
                        and lst.arity == 2:
                    n += 1
                    lst = lst.args[1]
                if lst != Atom("[]"):
                    return
                mark = len(trail)
                if unify(args[1], Int(n), bindings, trail):
                    yield None
                undo(trail, mark, bindings)
            return do_length()
        return None


def solve(program: Program, goal: Term,
          limits: Optional[SolveLimits] = None) -> List[Bindings]:
    """All answers for ``goal`` against ``program`` (within limits)."""
    return list(Solver(program, limits).solve(goal))
