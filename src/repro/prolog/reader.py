"""Prolog tokenizer.

Produces a stream of :class:`Token` objects from Prolog source text.
Handles: unquoted and quoted atoms, variables, integers, strings
(``"..."`` read as character-code lists), punctuation, ``%`` line
comments and ``/* ... */`` block comments, and the end-of-clause dot.

This is the same job as the O'Keefe/Warren tokenizer analysed as the
``RE`` benchmark in the paper, implemented here in Python as part of the
analyser's front end.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, Optional

__all__ = ["Token", "TokenizeError", "tokenize"]

SYMBOL_CHARS = set("+-*/\\^<>=~:.?@#&$")
SOLO_CHARS = set("!,;|")
PUNCT_CHARS = set("()[]{}")


class TokenizeError(SyntaxError):
    """Raised on malformed input, with line/column information."""

    def __init__(self, message: str, line: int, column: int) -> None:
        super().__init__("%s at line %d, column %d" % (message, line, column))
        self.line = line
        self.column = column


@dataclass(frozen=True)
class Token:
    """One lexical token.

    ``kind`` is one of ``atom``, ``var``, ``int``, ``string``, ``punct``,
    ``end`` (the clause-terminating dot), or ``eof``.  ``layout_before``
    records whether layout (whitespace/comment) immediately precedes the
    token — needed to distinguish ``f(`` (functor application) from
    ``f (`` (operator syntax).
    """

    kind: str
    text: str
    line: int
    column: int
    layout_before: bool = False

    @property
    def value(self) -> int:
        if self.kind != "int":
            raise ValueError("not an integer token: %r" % (self,))
        if self.text.startswith("0'"):
            return ord(self.text[2:])
        return int(self.text)


class _Scanner:
    def __init__(self, text: str) -> None:
        self.text = text
        self.pos = 0
        self.line = 1
        self.column = 1

    def peek(self, offset: int = 0) -> str:
        index = self.pos + offset
        if index < len(self.text):
            return self.text[index]
        return ""

    def advance(self) -> str:
        ch = self.text[self.pos]
        self.pos += 1
        if ch == "\n":
            self.line += 1
            self.column = 1
        else:
            self.column += 1
        return ch

    def error(self, message: str) -> TokenizeError:
        return TokenizeError(message, self.line, self.column)

    def at_end(self) -> bool:
        return self.pos >= len(self.text)


def _skip_layout(s: _Scanner) -> bool:
    """Skip whitespace and comments; return True if anything was skipped."""
    skipped = False
    while not s.at_end():
        ch = s.peek()
        if ch.isspace():
            s.advance()
            skipped = True
        elif ch == "%":
            while not s.at_end() and s.peek() != "\n":
                s.advance()
            skipped = True
        elif ch == "/" and s.peek(1) == "*":
            s.advance()
            s.advance()
            while True:
                if s.at_end():
                    raise s.error("unterminated block comment")
                if s.peek() == "*" and s.peek(1) == "/":
                    s.advance()
                    s.advance()
                    break
                s.advance()
            skipped = True
        else:
            break
    return skipped


def _scan_quoted(s: _Scanner, quote: str) -> str:
    """Scan the body of a quoted atom or string; the opening quote has
    already been consumed."""
    chars: List[str] = []
    while True:
        if s.at_end():
            raise s.error("unterminated quoted token")
        ch = s.advance()
        if ch == quote:
            if s.peek() == quote:  # doubled quote = literal quote
                chars.append(s.advance())
                continue
            return "".join(chars)
        if ch == "\\":
            if s.at_end():
                raise s.error("unterminated escape")
            esc = s.advance()
            mapping = {
                "n": "\n", "t": "\t", "r": "\r", "a": "\a", "b": "\b",
                "f": "\f", "v": "\v", "\\": "\\", "'": "'", '"': '"',
                "`": "`", "0": "\0",
            }
            if esc == "\n":
                continue  # escaped newline: line continuation
            if esc == "x":
                digits = []
                while s.peek() and s.peek() in "0123456789abcdefABCDEF":
                    digits.append(s.advance())
                if s.peek() == "\\":
                    s.advance()
                if not digits:
                    raise s.error("bad \\x escape")
                chars.append(chr(int("".join(digits), 16)))
                continue
            if esc in mapping:
                chars.append(mapping[esc])
                continue
            raise s.error("unknown escape \\%s" % esc)
        chars.append(ch)


def _scan_token(s: _Scanner, layout_before: bool) -> Token:
    line, column = s.line, s.column
    ch = s.peek()

    def tok(kind: str, text: str) -> Token:
        return Token(kind, text, line, column, layout_before)

    # Variables: _ or uppercase start.
    if ch == "_" or ch.isalpha() and ch.isupper():
        chars = [s.advance()]
        while s.peek().isalnum() or s.peek() == "_":
            chars.append(s.advance())
        return tok("var", "".join(chars))

    # Unquoted atoms: lowercase start.
    if ch.isalpha():
        chars = [s.advance()]
        while s.peek().isalnum() or s.peek() == "_":
            chars.append(s.advance())
        return tok("atom", "".join(chars))

    # Numbers, including 0'c character codes.
    if ch.isdigit():
        if ch == "0" and s.peek(1) == "'":
            s.advance()
            s.advance()
            if s.at_end():
                raise s.error("unterminated character code")
            code_char = s.advance()
            if code_char == "\\":
                esc = s.advance()
                mapping = {"n": "\n", "t": "\t", "r": "\r", "\\": "\\",
                           "'": "'", '"': '"', "0": "\0", "a": "\a",
                           "b": "\b", "f": "\f", "v": "\v"}
                if esc not in mapping:
                    raise s.error("unknown escape in character code")
                code_char = mapping[esc]
            elif code_char == "'" and s.peek() == "'":
                s.advance()  # 0''' is the quote character itself
            return tok("int", "0'" + code_char)
        chars = [s.advance()]
        while s.peek().isdigit():
            chars.append(s.advance())
        return tok("int", "".join(chars))

    # Quoted atoms and strings.
    if ch == "'":
        s.advance()
        return tok("atom", _scan_quoted(s, "'"))
    if ch == '"':
        s.advance()
        return tok("string", _scan_quoted(s, '"'))

    # Punctuation.
    if ch in PUNCT_CHARS:
        s.advance()
        return tok("punct", ch)

    # Solo characters are atoms by themselves.
    if ch in SOLO_CHARS:
        s.advance()
        return tok("atom", ch)

    # Symbol atoms (maximal munch), with special end-of-clause handling:
    # a '.' followed by layout or EOF terminates the clause.
    if ch in SYMBOL_CHARS:
        if ch == "." and (s.peek(1) == "" or s.peek(1).isspace()
                          or s.peek(1) == "%"):
            s.advance()
            return tok("end", ".")
        chars = [s.advance()]
        while s.peek() in SYMBOL_CHARS:
            chars.append(s.advance())
        return tok("atom", "".join(chars))

    raise s.error("unexpected character %r" % ch)


def tokenize(text: str) -> List[Token]:
    """Tokenize Prolog source text into a list ending with an eof token."""
    s = _Scanner(text)
    tokens: List[Token] = []
    while True:
        layout = _skip_layout(s)
        if s.at_end():
            tokens.append(Token("eof", "", s.line, s.column, layout))
            return tokens
        tokens.append(_scan_token(s, layout))
