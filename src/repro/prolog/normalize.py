"""Normalization of clauses to kernel form.

The abstract engine (like GAIA, see paper §4) executes *normalized*
clauses: the head is ``p(X0, ..., Xn-1)`` with distinct variables, and
the body is a sequence of kernel goals:

* :class:`NUnify` — ``Xi = Xj``
* :class:`NBuild` — ``Xi = f(Xj1, ..., Xjk)`` (all arguments variables)
* :class:`NCall`  — ``q(Xi1, ..., Xik)`` (all arguments variables)

Variables are integers ``0 .. nvars-1``; the head arguments are exactly
``0 .. arity-1``.  Disjunctions and if-then-else in bodies are expanded
into alternative bodies *before* normalization (a sound
over-approximation of if-then-else that ignores the commit), so one
source clause may yield several normalized clauses.

Deeply disjunctive clauses whose cartesian expansion would exceed
:data:`_MAX_BODIES_PER_CLAUSE` bodies degrade *soundly* instead of
aborting the analysis: the offending disjunction is hidden behind a
fresh auxiliary predicate with one clause per disjunct (the standard
disjunction compilation), keeping the expansion linear.  The concrete
semantics is unchanged; abstractly the branch outputs now join at the
auxiliary call's return rather than at the clause exit, which is a
sound over-approximation that may be *less precise* than inline
expansion once widening or or-width caps apply downstream of the join
(never less sound, and strictly better than the previous hard
``ValueError``).  Each extraction is counted in
:attr:`NormProgram.disjunction_fallbacks`, which the engine surfaces
as ``AnalysisStats.disjunction_fallbacks``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple, Union

from .program import Clause, PredId, Program
from .terms import Atom, Int, Struct, Term, Var, term_variables

__all__ = [
    "NUnify", "NBuild", "NCall", "NGoal",
    "NormClause", "NormProcedure", "NormProgram",
    "normalize_program", "normalize_clause",
]


@dataclass(frozen=True)
class NUnify:
    """Kernel goal ``X<a> = X<b>``."""
    a: int
    b: int

    def __repr__(self) -> str:
        return "X%d = X%d" % (self.a, self.b)


@dataclass(frozen=True)
class NBuild:
    """Kernel goal ``X<v> = name(X<args[0]>, ...)``.

    ``is_int`` marks integer literals (arity is then 0 and ``name`` is
    the decimal text of the value).
    """
    v: int
    name: str
    args: Tuple[int, ...]
    is_int: bool = False

    @property
    def arity(self) -> int:
        return len(self.args)

    def __repr__(self) -> str:
        if not self.args:
            return "X%d = %s" % (self.v, self.name)
        inner = ",".join("X%d" % a for a in self.args)
        return "X%d = %s(%s)" % (self.v, self.name, inner)


@dataclass(frozen=True)
class NCall:
    """Kernel goal ``pred(X<args[0]>, ...)``."""
    pred: PredId
    args: Tuple[int, ...]

    def __repr__(self) -> str:
        if not self.args:
            return self.pred[0]
        inner = ",".join("X%d" % a for a in self.args)
        return "%s(%s)" % (self.pred[0], inner)


NGoal = Union[NUnify, NBuild, NCall]


@dataclass
class NormClause:
    pred: PredId
    nvars: int
    body: List[NGoal]
    source: Optional[Clause] = None
    var_names: List[str] = field(default_factory=list)

    def __repr__(self) -> str:
        head_args = ",".join("X%d" % i for i in range(self.pred[1]))
        head = self.pred[0] + ("(%s)" % head_args if head_args else "")
        if not self.body:
            return head + "."
        return "%s :- %s." % (head, ", ".join(map(repr, self.body)))


@dataclass
class NormProcedure:
    pred: PredId
    clauses: List[NormClause] = field(default_factory=list)


@dataclass
class NormProgram:
    procedures: Dict[PredId, NormProcedure] = field(default_factory=dict)
    order: List[PredId] = field(default_factory=list)
    #: oversized disjunctions compiled to auxiliary predicates instead
    #: of cartesian expansion (sound; branch outputs join earlier than
    #: under inline expansion, so precision may drop — see module doc;
    #: nonzero values are worth a warning in reports).
    disjunction_fallbacks: int = 0

    def procedure(self, pred: PredId) -> Optional[NormProcedure]:
        return self.procedures.get(pred)

    def defined(self, pred: PredId) -> bool:
        return pred in self.procedures

    @property
    def num_clauses(self) -> int:
        return sum(len(p.clauses) for p in self.procedures.values())

    def num_program_points(self) -> int:
        """Program points: one before each kernel goal plus one at each
        clause end (our concrete rendering of Table 1's measure)."""
        return sum(len(c.body) + 1
                   for p in self.procedures.values() for c in p.clauses)


# -- disjunction expansion ------------------------------------------------

_MAX_BODIES_PER_CLAUSE = 64


class _AuxSink:
    """Collects auxiliary predicates extracted from oversized
    disjunctions.  ``seed`` keeps the generated names deterministic and
    unique within one program (predicate name, arity, clause index)."""

    def __init__(self, seed: str) -> None:
        self.seed = seed
        self.count = 0
        #: (PredId, head Term, [body goal lists]) per extraction.
        self.procedures: List[Tuple[PredId, Term, List[List[Term]]]] = []

    def extract(self, goal: Term,
                alternatives: List[List[Term]]) -> Term:
        """Register one auxiliary predicate whose clauses are
        ``alternatives`` and return the goal that calls it."""
        variables = term_variables(goal)
        name = "$or_%s_%d" % (self.seed, self.count)
        self.count += 1
        pred = (name, len(variables))
        if variables:
            head: Term = Struct(name, tuple(variables))
        else:
            head = Atom(name)
        self.procedures.append((pred, head, alternatives))
        return head


def _expand_goal(goal: Term, sink: _AuxSink) -> List[List[Term]]:
    """Alternative flattened goal sequences for one source goal."""
    if isinstance(goal, Struct) and goal.name == "," and goal.arity == 2:
        return _expand_body([goal.args[0], goal.args[1]], sink)
    if isinstance(goal, Struct) and goal.name == ";" and goal.arity == 2:
        left, right = goal.args
        branches: List[List[Term]] = []
        if isinstance(left, Struct) and left.name == "->" and left.arity == 2:
            branches.extend(_expand_body([left.args[0], left.args[1]], sink))
        else:
            branches.extend(_expand_body([left], sink))
        branches.extend(_expand_body([right], sink))
        return branches
    if isinstance(goal, Struct) and goal.name == "->" and goal.arity == 2:
        return _expand_body([goal.args[0], goal.args[1]], sink)
    if isinstance(goal, Atom) and goal.name == "true":
        return [[]]
    return [[goal]]


def _expand_body(goals: List[Term], sink: _AuxSink) -> List[List[Term]]:
    """Cartesian expansion of disjunctive bodies.

    The result never exceeds :data:`_MAX_BODIES_PER_CLAUSE` bodies: a
    goal whose alternatives would blow the product is replaced by a
    call to a fresh auxiliary predicate with one clause per
    alternative — the standard compilation of disjunction, sound
    though potentially less precise than inline expansion (see the
    module docstring)."""
    bodies: List[List[Term]] = [[]]
    for goal in goals:
        alternatives = _expand_goal(goal, sink)
        if (len(alternatives) > 1
                and len(bodies) * len(alternatives)
                > _MAX_BODIES_PER_CLAUSE):
            alternatives = [[sink.extract(goal, alternatives)]]
        bodies = [prefix + alt for prefix in bodies for alt in alternatives]
    return bodies


# -- clause normalization --------------------------------------------------

class _ClauseBuilder:
    def __init__(self, arity: int) -> None:
        self.nvars = arity
        self.varmap: Dict[Var, int] = {}
        self.names: List[str] = ["A%d" % i for i in range(arity)]
        self.goals: List[NGoal] = []

    def fresh(self, name: str = "T") -> int:
        index = self.nvars
        self.nvars += 1
        self.names.append("%s%d" % (name, index))
        return index

    def var_index(self, var: Var) -> int:
        index = self.varmap.get(var)
        if index is None:
            index = self.fresh(var.name)
            self.varmap[var] = index
        return index

    def unify_with(self, index: int, term: Term) -> None:
        """Emit kernel goals for ``X<index> = term``."""
        if isinstance(term, Var):
            other = self.varmap.get(term)
            if other is None:
                self.varmap[term] = index
                return
            if other != index:
                self.goals.append(NUnify(index, other))
            return
        if isinstance(term, Atom):
            self.goals.append(NBuild(index, term.name, ()))
            return
        if isinstance(term, Int):
            self.goals.append(NBuild(index, str(term.value), (), True))
            return
        assert isinstance(term, Struct)
        arg_indices: List[int] = []
        pending: List[Tuple[int, Term]] = []
        for arg in term.args:
            if isinstance(arg, Var):
                arg_indices.append(self.var_index(arg))
            else:
                child = self.fresh()
                arg_indices.append(child)
                pending.append((child, arg))
        self.goals.append(NBuild(index, term.name, tuple(arg_indices)))
        for child, sub in pending:
            self.unify_with(child, sub)

    def term_to_var(self, term: Term) -> int:
        """Var index for a goal argument, flattening if needed."""
        if isinstance(term, Var):
            return self.var_index(term)
        index = self.fresh()
        self.unify_with(index, term)
        return index


def _normalize_one(pred: PredId, head: Term, body: List[Term],
                   source: Clause) -> NormClause:
    arity = pred[1]
    builder = _ClauseBuilder(arity)
    head_args: List[Term] = list(head.args) if isinstance(head, Struct) else []
    # Bind head variables: a first-occurrence variable in argument i *is*
    # variable i; anything else unifies.
    for i, arg in enumerate(head_args):
        if isinstance(arg, Var) and arg not in builder.varmap:
            builder.varmap[arg] = i
            builder.names[i] = arg.name
        else:
            builder.unify_with(i, arg)
    for goal in body:
        _normalize_goal(builder, goal)
    return NormClause(pred, builder.nvars, builder.goals, source,
                      builder.names)


def _normalize_goal(builder: _ClauseBuilder, goal: Term) -> None:
    if isinstance(goal, Var):
        builder.goals.append(NCall(("call", 1), (builder.var_index(goal),)))
        return
    if isinstance(goal, Atom):
        if goal.name == "true":
            return
        builder.goals.append(NCall((goal.name, 0), ()))
        return
    if isinstance(goal, Int):
        raise ValueError("integer cannot be a goal: %r" % (goal,))
    assert isinstance(goal, Struct)
    if goal.name == "=" and goal.arity == 2:
        left, right = goal.args
        if isinstance(left, Var):
            builder.unify_with(builder.var_index(left), right)
            return
        if isinstance(right, Var):
            builder.unify_with(builder.var_index(right), left)
            return
        index = builder.fresh()
        builder.unify_with(index, left)
        builder.unify_with(index, right)
        return
    if goal.name == "\\+" and goal.arity == 1 or \
            goal.name == "not" and goal.arity == 1:
        # Negation as failure binds nothing on success: abstractly a test.
        builder.goals.append(NCall(("\\+", 1),
                                   (builder.term_to_var(goal.args[0]),)))
        return
    args = tuple(builder.term_to_var(a) for a in goal.args)
    builder.goals.append(NCall((goal.name, goal.arity), args))


def _normalize_clause_ex(clause: Clause, aux_seed: str
                         ) -> Tuple[List[NormClause],
                                    List[Tuple[PredId, List[NormClause]]],
                                    int]:
    """Normalize one source clause.  Returns the clauses for the
    clause's own predicate, the normalized procedures of any auxiliary
    predicates extracted from oversized disjunctions, and the number of
    such extractions."""
    pred = clause.pred
    sink = _AuxSink(aux_seed)
    results = []
    for body in _expand_body(list(clause.body), sink):
        results.append(_normalize_one(pred, clause.head, body, clause))
    aux: List[Tuple[PredId, List[NormClause]]] = []
    # Extractions may themselves register further extractions while
    # their bodies are expanded; the list grows monotonically, and every
    # alternative stored in it is already fully expanded.
    for aux_pred, head, alternatives in sink.procedures:
        aux.append((aux_pred,
                    [_normalize_one(aux_pred, head, body, clause)
                     for body in alternatives]))
    return results, aux, sink.count


def normalize_clause(clause: Clause,
                     aux_seed: Optional[str] = None) -> List[NormClause]:
    """Normalize one source clause (possibly several results, one per
    disjunctive branch).  Clauses of auxiliary predicates extracted
    from oversized disjunctions are appended after the clause's own
    (recognizable by their ``pred``)."""
    if aux_seed is None:
        aux_seed = "%s_%d" % clause.pred
    results, aux, _ = _normalize_clause_ex(clause, aux_seed)
    for _, aux_clauses in aux:
        results.extend(aux_clauses)
    return results


def normalize_program(program: Program) -> NormProgram:
    """Normalize every clause of ``program``."""
    norm = NormProgram()
    for pred in program.order:
        procedure = NormProcedure(pred)
        for index, clause in enumerate(program.procedures[pred].clauses):
            clauses, aux, fallbacks = _normalize_clause_ex(
                clause, "%s_%d_%d" % (pred[0], pred[1], index))
            procedure.clauses.extend(clauses)
            norm.disjunction_fallbacks += fallbacks
            for aux_pred, aux_clauses in aux:
                norm.procedures[aux_pred] = NormProcedure(aux_pred,
                                                          aux_clauses)
                norm.order.append(aux_pred)
        norm.procedures[pred] = procedure
        norm.order.append(pred)
    return norm
