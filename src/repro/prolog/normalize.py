"""Normalization of clauses to kernel form.

The abstract engine (like GAIA, see paper §4) executes *normalized*
clauses: the head is ``p(X0, ..., Xn-1)`` with distinct variables, and
the body is a sequence of kernel goals:

* :class:`NUnify` — ``Xi = Xj``
* :class:`NBuild` — ``Xi = f(Xj1, ..., Xjk)`` (all arguments variables)
* :class:`NCall`  — ``q(Xi1, ..., Xik)`` (all arguments variables)

Variables are integers ``0 .. nvars-1``; the head arguments are exactly
``0 .. arity-1``.  Disjunctions and if-then-else in bodies are expanded
into alternative bodies *before* normalization (a sound
over-approximation of if-then-else that ignores the commit), so one
source clause may yield several normalized clauses.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple, Union

from .program import Clause, PredId, Program
from .terms import Atom, Int, Struct, Term, Var

__all__ = [
    "NUnify", "NBuild", "NCall", "NGoal",
    "NormClause", "NormProcedure", "NormProgram",
    "normalize_program", "normalize_clause",
]


@dataclass(frozen=True)
class NUnify:
    """Kernel goal ``X<a> = X<b>``."""
    a: int
    b: int

    def __repr__(self) -> str:
        return "X%d = X%d" % (self.a, self.b)


@dataclass(frozen=True)
class NBuild:
    """Kernel goal ``X<v> = name(X<args[0]>, ...)``.

    ``is_int`` marks integer literals (arity is then 0 and ``name`` is
    the decimal text of the value).
    """
    v: int
    name: str
    args: Tuple[int, ...]
    is_int: bool = False

    @property
    def arity(self) -> int:
        return len(self.args)

    def __repr__(self) -> str:
        if not self.args:
            return "X%d = %s" % (self.v, self.name)
        inner = ",".join("X%d" % a for a in self.args)
        return "X%d = %s(%s)" % (self.v, self.name, inner)


@dataclass(frozen=True)
class NCall:
    """Kernel goal ``pred(X<args[0]>, ...)``."""
    pred: PredId
    args: Tuple[int, ...]

    def __repr__(self) -> str:
        if not self.args:
            return self.pred[0]
        inner = ",".join("X%d" % a for a in self.args)
        return "%s(%s)" % (self.pred[0], inner)


NGoal = Union[NUnify, NBuild, NCall]


@dataclass
class NormClause:
    pred: PredId
    nvars: int
    body: List[NGoal]
    source: Optional[Clause] = None
    var_names: List[str] = field(default_factory=list)

    def __repr__(self) -> str:
        head_args = ",".join("X%d" % i for i in range(self.pred[1]))
        head = self.pred[0] + ("(%s)" % head_args if head_args else "")
        if not self.body:
            return head + "."
        return "%s :- %s." % (head, ", ".join(map(repr, self.body)))


@dataclass
class NormProcedure:
    pred: PredId
    clauses: List[NormClause] = field(default_factory=list)


@dataclass
class NormProgram:
    procedures: Dict[PredId, NormProcedure] = field(default_factory=dict)
    order: List[PredId] = field(default_factory=list)

    def procedure(self, pred: PredId) -> Optional[NormProcedure]:
        return self.procedures.get(pred)

    def defined(self, pred: PredId) -> bool:
        return pred in self.procedures

    @property
    def num_clauses(self) -> int:
        return sum(len(p.clauses) for p in self.procedures.values())

    def num_program_points(self) -> int:
        """Program points: one before each kernel goal plus one at each
        clause end (our concrete rendering of Table 1's measure)."""
        return sum(len(c.body) + 1
                   for p in self.procedures.values() for c in p.clauses)


# -- disjunction expansion ------------------------------------------------

_MAX_BODIES_PER_CLAUSE = 64


def _expand_goal(goal: Term) -> List[List[Term]]:
    """Alternative flattened goal sequences for one source goal."""
    if isinstance(goal, Struct) and goal.name == "," and goal.arity == 2:
        return _expand_body(
            [goal.args[0], goal.args[1]])
    if isinstance(goal, Struct) and goal.name == ";" and goal.arity == 2:
        left, right = goal.args
        branches: List[List[Term]] = []
        if isinstance(left, Struct) and left.name == "->" and left.arity == 2:
            branches.extend(_expand_body([left.args[0], left.args[1]]))
        else:
            branches.extend(_expand_body([left]))
        branches.extend(_expand_body([right]))
        return branches
    if isinstance(goal, Struct) and goal.name == "->" and goal.arity == 2:
        return _expand_body([goal.args[0], goal.args[1]])
    if isinstance(goal, Atom) and goal.name == "true":
        return [[]]
    return [[goal]]


def _expand_body(goals: List[Term]) -> List[List[Term]]:
    """Cartesian expansion of disjunctive bodies, capped defensively."""
    bodies: List[List[Term]] = [[]]
    for goal in goals:
        alternatives = _expand_goal(goal)
        new_bodies = []
        for prefix in bodies:
            for alt in alternatives:
                new_bodies.append(prefix + alt)
                if len(new_bodies) > _MAX_BODIES_PER_CLAUSE:
                    raise ValueError("disjunction expansion too large")
        bodies = new_bodies
    return bodies


# -- clause normalization --------------------------------------------------

class _ClauseBuilder:
    def __init__(self, arity: int) -> None:
        self.nvars = arity
        self.varmap: Dict[Var, int] = {}
        self.names: List[str] = ["A%d" % i for i in range(arity)]
        self.goals: List[NGoal] = []

    def fresh(self, name: str = "T") -> int:
        index = self.nvars
        self.nvars += 1
        self.names.append("%s%d" % (name, index))
        return index

    def var_index(self, var: Var) -> int:
        index = self.varmap.get(var)
        if index is None:
            index = self.fresh(var.name)
            self.varmap[var] = index
        return index

    def unify_with(self, index: int, term: Term) -> None:
        """Emit kernel goals for ``X<index> = term``."""
        if isinstance(term, Var):
            other = self.varmap.get(term)
            if other is None:
                self.varmap[term] = index
                return
            if other != index:
                self.goals.append(NUnify(index, other))
            return
        if isinstance(term, Atom):
            self.goals.append(NBuild(index, term.name, ()))
            return
        if isinstance(term, Int):
            self.goals.append(NBuild(index, str(term.value), (), True))
            return
        assert isinstance(term, Struct)
        arg_indices: List[int] = []
        pending: List[Tuple[int, Term]] = []
        for arg in term.args:
            if isinstance(arg, Var):
                arg_indices.append(self.var_index(arg))
            else:
                child = self.fresh()
                arg_indices.append(child)
                pending.append((child, arg))
        self.goals.append(NBuild(index, term.name, tuple(arg_indices)))
        for child, sub in pending:
            self.unify_with(child, sub)

    def term_to_var(self, term: Term) -> int:
        """Var index for a goal argument, flattening if needed."""
        if isinstance(term, Var):
            return self.var_index(term)
        index = self.fresh()
        self.unify_with(index, term)
        return index


def _normalize_one(pred: PredId, head: Term, body: List[Term],
                   source: Clause) -> NormClause:
    arity = pred[1]
    builder = _ClauseBuilder(arity)
    head_args: List[Term] = list(head.args) if isinstance(head, Struct) else []
    # Bind head variables: a first-occurrence variable in argument i *is*
    # variable i; anything else unifies.
    for i, arg in enumerate(head_args):
        if isinstance(arg, Var) and arg not in builder.varmap:
            builder.varmap[arg] = i
            builder.names[i] = arg.name
        else:
            builder.unify_with(i, arg)
    for goal in body:
        _normalize_goal(builder, goal)
    return NormClause(pred, builder.nvars, builder.goals, source,
                      builder.names)


def _normalize_goal(builder: _ClauseBuilder, goal: Term) -> None:
    if isinstance(goal, Var):
        builder.goals.append(NCall(("call", 1), (builder.var_index(goal),)))
        return
    if isinstance(goal, Atom):
        if goal.name == "true":
            return
        builder.goals.append(NCall((goal.name, 0), ()))
        return
    if isinstance(goal, Int):
        raise ValueError("integer cannot be a goal: %r" % (goal,))
    assert isinstance(goal, Struct)
    if goal.name == "=" and goal.arity == 2:
        left, right = goal.args
        if isinstance(left, Var):
            builder.unify_with(builder.var_index(left), right)
            return
        if isinstance(right, Var):
            builder.unify_with(builder.var_index(right), left)
            return
        index = builder.fresh()
        builder.unify_with(index, left)
        builder.unify_with(index, right)
        return
    if goal.name == "\\+" and goal.arity == 1 or \
            goal.name == "not" and goal.arity == 1:
        # Negation as failure binds nothing on success: abstractly a test.
        builder.goals.append(NCall(("\\+", 1),
                                   (builder.term_to_var(goal.args[0]),)))
        return
    args = tuple(builder.term_to_var(a) for a in goal.args)
    builder.goals.append(NCall((goal.name, goal.arity), args))


def normalize_clause(clause: Clause) -> List[NormClause]:
    """Normalize one source clause (possibly several results, one per
    disjunctive branch)."""
    pred = clause.pred
    results = []
    for body in _expand_body(list(clause.body)):
        results.append(_normalize_one(pred, clause.head, body, clause))
    return results


def normalize_program(program: Program) -> NormProgram:
    """Normalize every clause of ``program``."""
    norm = NormProgram()
    for pred in program.order:
        procedure = NormProcedure(pred)
        for clause in program.procedures[pred].clauses:
            procedure.clauses.extend(normalize_clause(clause))
        norm.procedures[pred] = procedure
        norm.order.append(pred)
    return norm
