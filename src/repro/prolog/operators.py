"""Standard Prolog operator table.

An operator definition is ``(priority, type)`` with type one of
``xfx, xfy, yfx`` (infix), ``fy, fx`` (prefix), ``xf, yf`` (postfix).
``x`` means the argument must have *strictly lower* priority, ``y``
means lower *or equal*.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

__all__ = ["OperatorTable", "OpDef", "default_operators", "MAX_PRIORITY"]

MAX_PRIORITY = 1200


@dataclass(frozen=True)
class OpDef:
    priority: int
    type: str  # xfx | xfy | yfx | fy | fx | xf | yf

    @property
    def is_infix(self) -> bool:
        return self.type in ("xfx", "xfy", "yfx")

    @property
    def is_prefix(self) -> bool:
        return self.type in ("fy", "fx")

    @property
    def is_postfix(self) -> bool:
        return self.type in ("xf", "yf")

    def left_max(self) -> int:
        """Maximal priority allowed for the left argument (infix/postfix)."""
        if self.type in ("yfx", "yf"):
            return self.priority
        return self.priority - 1

    def right_max(self) -> int:
        """Maximal priority allowed for the right argument (infix/prefix)."""
        if self.type in ("xfy", "fy"):
            return self.priority
        return self.priority - 1


_DEFAULT: Dict[str, Tuple[Optional[OpDef], Optional[OpDef]]] = {}


def _add(table, name: str, priority: int, optype: str) -> None:
    infix, prefix = table.get(name, (None, None))
    opdef = OpDef(priority, optype)
    if opdef.is_prefix:
        table[name] = (infix, opdef)
    else:
        table[name] = (opdef, prefix)


for _name, _pri, _type in [
    (":-", 1200, "xfx"), ("-->", 1200, "xfx"),
    (":-", 1200, "fx"), ("?-", 1200, "fx"),
    (";", 1100, "xfy"), ("|", 1100, "xfy"), ("->", 1050, "xfy"),
    (",", 1000, "xfy"),
    ("\\+", 900, "fy"), ("not", 900, "fy"),
    ("=", 700, "xfx"), ("\\=", 700, "xfx"),
    ("==", 700, "xfx"), ("\\==", 700, "xfx"),
    ("@<", 700, "xfx"), ("@>", 700, "xfx"),
    ("@=<", 700, "xfx"), ("@>=", 700, "xfx"),
    ("=..", 700, "xfx"), ("is", 700, "xfx"),
    ("=:=", 700, "xfx"), ("=\\=", 700, "xfx"),
    ("<", 700, "xfx"), (">", 700, "xfx"),
    ("=<", 700, "xfx"), (">=", 700, "xfx"),
    ("+", 500, "yfx"), ("-", 500, "yfx"),
    ("/\\", 500, "yfx"), ("\\/", 500, "yfx"), ("xor", 500, "yfx"),
    ("*", 400, "yfx"), ("/", 400, "yfx"), ("//", 400, "yfx"),
    ("mod", 400, "yfx"), ("rem", 400, "yfx"),
    ("<<", 400, "yfx"), (">>", 400, "yfx"),
    ("**", 200, "xfx"), ("^", 200, "xfy"),
    ("-", 200, "fy"), ("+", 200, "fy"), ("\\", 200, "fy"),
]:
    _add(_DEFAULT, _name, _pri, _type)


class OperatorTable:
    """Operator lookups for the parser.  A name can have at most one
    infix/postfix definition and one prefix definition simultaneously."""

    def __init__(self, definitions=None) -> None:
        if definitions is None:
            definitions = dict(_DEFAULT)
        self._defs = definitions

    def infix(self, name: str) -> Optional[OpDef]:
        opdef = self._defs.get(name, (None, None))[0]
        if opdef is not None and opdef.is_infix:
            return opdef
        return None

    def postfix(self, name: str) -> Optional[OpDef]:
        opdef = self._defs.get(name, (None, None))[0]
        if opdef is not None and opdef.is_postfix:
            return opdef
        return None

    def prefix(self, name: str) -> Optional[OpDef]:
        return self._defs.get(name, (None, None))[1]

    def is_operator(self, name: str) -> bool:
        return name in self._defs

    def add(self, name: str, priority: int, optype: str) -> None:
        """Register an operator, as ``op/3`` would."""
        if not 0 < priority <= MAX_PRIORITY:
            raise ValueError("operator priority out of range: %d" % priority)
        if optype not in ("xfx", "xfy", "yfx", "fy", "fx", "xf", "yf"):
            raise ValueError("bad operator type: %s" % optype)
        _add(self._defs, name, priority, optype)

    def copy(self) -> "OperatorTable":
        return OperatorTable(dict(self._defs))


def default_operators() -> OperatorTable:
    """A fresh table holding the standard Prolog operators."""
    return OperatorTable()
