"""Abstract semantics of builtin predicates.

Soundness argument: Prolog predicates only *instantiate* their
arguments, and type-graph denotations are instantiation-closed, so the
identity transfer function is always sound.  A builtin spec therefore
only *adds* constraints: a tag per argument naming a type that
over-approximates every possible value of that argument on success
(e.g. the first argument of ``is/2`` is an integer).  Tags refine
``Pat(Type)``; the trivial leaf domain ignores them (its ``meet`` is
the identity), mirroring the baseline's weaker builtin knowledge.

``fails=True`` marks builtins with no success at all (``fail/0``).
Unknown predicates are reported by the engine and treated as identity.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from ..domains.leaf import LeafDomain, TypeLeafDomain
from ..prolog.program import PredId
from ..typegraph.grammar import Grammar, g_any, g_atom, g_int
from ..typegraph.ops import g_list_of, g_union

__all__ = ["BuiltinSpec", "BUILTINS", "is_builtin", "tag_value"]


@dataclass(frozen=True)
class BuiltinSpec:
    """Abstract behaviour of one builtin.

    ``tags`` gives a constraint tag per argument; ``any`` is the
    identity.  Builtins absent from the table behave like
    ``BuiltinSpec(("any", ...))``.
    """

    tags: Tuple[str, ...]
    fails: bool = False


def _t(*tags: str, fails: bool = False) -> BuiltinSpec:
    return BuiltinSpec(tuple(tags), fails)


BUILTINS: Dict[PredId, BuiltinSpec] = {
    ("true", 0): _t(),
    ("!", 0): _t(),
    ("fail", 0): _t(fails=True),
    ("false", 0): _t(fails=True),
    ("halt", 0): _t(fails=True),  # no success state flows on
    ("nl", 0): _t(),
    ("seen", 0): _t(),
    ("told", 0): _t(),
    ("listing", 0): _t(),
    ("write", 1): _t("any"),
    ("print", 1): _t("any"),
    ("display", 1): _t("any"),
    ("write_canonical", 1): _t("any"),
    ("writeq", 1): _t("any"),
    ("see", 1): _t("any"),
    ("tell", 1): _t("any"),
    ("listing", 1): _t("any"),
    ("read", 1): _t("any"),
    ("get0", 1): _t("int"),
    ("get", 1): _t("int"),
    ("put", 1): _t("int"),
    ("tab", 1): _t("int"),
    ("var", 1): _t("any"),
    ("nonvar", 1): _t("any"),
    ("atom", 1): _t("any"),       # "all atoms" is not finitely presentable
    ("atomic", 1): _t("any"),
    ("number", 1): _t("int"),
    ("integer", 1): _t("int"),
    ("is", 2): _t("int", "any"),
    ("<", 2): _t("any", "any"),
    (">", 2): _t("any", "any"),
    ("=<", 2): _t("any", "any"),
    (">=", 2): _t("any", "any"),
    ("=:=", 2): _t("any", "any"),
    ("=\\=", 2): _t("any", "any"),
    ("==", 2): _t("any", "any"),
    ("\\==", 2): _t("any", "any"),
    ("@<", 2): _t("any", "any"),
    ("@>", 2): _t("any", "any"),
    ("@=<", 2): _t("any", "any"),
    ("@>=", 2): _t("any", "any"),
    ("\\=", 2): _t("any", "any"),
    ("\\+", 1): _t("any"),
    ("not", 1): _t("any"),
    ("call", 1): _t("any"),
    ("compare", 3): _t("ordering", "any", "any"),
    ("functor", 3): _t("any", "any", "int"),
    ("arg", 3): _t("int", "any", "any"),
    ("=..", 2): _t("any", "list"),
    ("name", 2): _t("any", "codes"),
    ("atom_codes", 2): _t("any", "codes"),
    ("number_codes", 2): _t("int", "codes"),
    ("atom_chars", 2): _t("any", "list"),
    # chars are one-character atoms, so "list" (of any) is the tightest
    # finitely presentable tag, mirroring atom_chars/2.
    ("number_chars", 2): _t("int", "list"),
    ("atom_length", 2): _t("any", "int"),
    ("char_code", 2): _t("any", "int"),
    ("succ", 2): _t("int", "int"),
    # sort/2 and friends succeed only on proper lists, with a list out.
    ("sort", 2): _t("list", "list"),
    ("msort", 2): _t("list", "list"),
    # keysort's pairs K-V are not finitely presentable beyond "list".
    ("keysort", 2): _t("list", "list"),
    ("length", 2): _t("list", "int"),
    ("between", 3): _t("int", "int", "int"),
    ("succ_or_zero", 1): _t("int"),
    ("assert", 1): _t("any"),
    ("asserta", 1): _t("any"),
    ("assertz", 1): _t("any"),
    ("retract", 1): _t("any"),
    ("abolish", 2): _t("any", "int"),
    ("ground", 1): _t("any"),
    ("copy_term", 2): _t("any", "any"),
    ("bagof", 3): _t("any", "any", "list"),
    ("setof", 3): _t("any", "any", "list"),
    ("findall", 3): _t("any", "any", "list"),
}


def is_builtin(pred: PredId) -> bool:
    return pred in BUILTINS


_TAG_CACHE: Dict[Tuple[int, str], Grammar] = {}


def tag_value(domain: LeafDomain, tag: str):
    """The leaf-domain value a tag constrains an argument with."""
    if not isinstance(domain, TypeLeafDomain) or tag == "any":
        return domain.top()
    key = (id(domain), tag)
    if key not in _TAG_CACHE:
        if tag == "int":
            value = g_int()
        elif tag == "list":
            value = g_list_of(g_any())
        elif tag == "codes":
            value = g_list_of(g_int())
        elif tag == "ordering":
            value = g_union(g_union(g_atom("<"), g_atom("=")), g_atom(">"))
        else:
            raise ValueError("unknown builtin tag: %s" % tag)
        _TAG_CACHE[key] = value
    return _TAG_CACHE[key]
