"""The fixpoint layer: the worklist engine and abstract builtins."""

from .builtins import BUILTINS, BuiltinSpec, is_builtin, tag_value
from .engine import (AnalysisBudgetExceeded, AnalysisConfig, AnalysisResult,
                     AnalysisStats, Engine, Entry)

__all__ = [
    "BUILTINS", "BuiltinSpec", "is_builtin", "tag_value",
    "AnalysisBudgetExceeded", "AnalysisConfig", "AnalysisResult",
    "AnalysisStats", "Engine", "Entry",
]
