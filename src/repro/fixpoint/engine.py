"""The fixpoint engine (paper §4, in the style of GAIA).

A worklist algorithm over a table of *entries* ``(pred, β_in) → β_out``:

* **polyvariant**: distinct input patterns get distinct entries, up to a
  per-predicate cap; beyond the cap new inputs are *widened* into the
  most recent entry's input (the call-pattern widening of §7.1 case 2,
  and the input-pattern collapsing discussed in §8/§9 for RE);
* clause bodies execute abstractly left-to-right on a
  :class:`~repro.domains.pattern.SubstBuilder`; procedure calls look up
  the table and record a dependency edge, so an improved callee result
  reschedules its callers;
* clause results are joined (operation UNION) and, after
  ``widening_delay`` updates, widened against the previous output
  (operation WIDEN) — delaying the widening "until the structure of the
  type appears clearly", as §2 requires for the AR1 example.

**Differential re-evaluation** (default, ``AnalysisConfig.differential``
/ ``REPRO_DIFFERENTIAL``): the worklist is clause-granular underneath.
Dependencies are recorded per *call site* — ``(entry, clause index,
call-site index)`` — and each entry caches every clause's last output,
so re-analyzing an entry only re-executes clauses with a *dirty* call
site (one whose callee tuple updated since the clause last ran) and
joins the cached outputs of the rest.  Abstract clause execution is a
deterministic function of the entry's β_in and the callee outputs at
its call sites, so the joined result — and therefore every β_out and
the whole table — is bit-identical to full re-execution; only the
`clause_iterations` work drops.  A dirty clause additionally resumes
from a :meth:`~repro.domains.pattern.SubstBuilder.fork` snapshot taken
just before its first dirty call site instead of from the clause head
(GAIA-style prefix resumption, counted in
``AnalysisStats.callsite_resumptions``).  Call-site granularity also
lets the engine drop stale edges — a call site that re-resolves to a
different table entry unsubscribes from the old one — and skip
scheduling dependents that end up with no dirty clause (the stale
self-edge case), so wasted procedure iterations disappear as well.

**Scheduling**: the default worklist is a LIFO stack (newly discovered
callees are analyzed before their callers retry — GAIA's top-down
descent).  ``AnalysisConfig.scheduler="scc"`` switches to an opt-in
SCC-stratified priority queue: entries of callee-most strongly
connected components (``repro.analysis.callgraph.norm_scc_indices``)
are driven to a local fixpoint before their callers resume, cutting
wasted caller iterations on deep programs.

Statistics match Table 3: procedure iterations (entry analyses) and
clause iterations; ``clause_iterations_skipped`` counts clause runs the
differential mode avoided (executed + skipped = what a full engine
would have executed over the same procedure iterations).
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass, field
from heapq import heappop, heappush
from typing import Dict, List, Optional, Set, Tuple

from ..domains.leaf import LeafDomain, TypeLeafDomain
from ..domains.pattern import (AbstractSubst, PAT_BOTTOM, SubstBuilder,
                               make_builder, subst_eq, subst_join,
                               subst_le, subst_top, subst_widen)
from ..prolog.normalize import NBuild, NCall, NUnify, NormClause, NormProgram
from ..prolog.program import PredId
from ..typegraph import arena, opcache
from .builtins import BUILTINS, tag_value

__all__ = ["AnalysisConfig", "AnalysisStats", "Entry", "AnalysisResult",
           "Engine", "AnalysisBudgetExceeded", "SCHEDULERS"]

#: Recognized ``AnalysisConfig.scheduler`` values.
SCHEDULERS = ("lifo", "scc")


class AnalysisBudgetExceeded(RuntimeError):
    """The global iteration budget was exhausted (safety net; should not
    happen — widening guarantees termination)."""


def _env_differential() -> Optional[bool]:
    """Tri-state ``REPRO_DIFFERENTIAL`` override: None when unset."""
    value = os.environ.get("REPRO_DIFFERENTIAL")
    if value is None:
        return None
    return value.strip().lower() not in ("0", "off", "false", "no")


@dataclass
class AnalysisConfig:
    """Tunables of the analysis.

    ``max_or_width`` is Table 3's or-degree restriction (None, 5, 2).
    ``max_input_patterns`` bounds polyvariance per predicate.
    ``widening_delay`` counts output updates joined before widening
    kicks in.
    ``differential`` toggles clause-granular differential re-evaluation
    (results are bit-identical either way; the ``REPRO_DIFFERENTIAL``
    environment variable, when set, overrides this for A/B runs).
    ``scheduler`` picks the worklist policy: ``"lifo"`` (default, the
    paper's descent order) or ``"scc"`` (callee SCCs first).
    ``keep_deps`` retains the differential engine's per-(entry, clause,
    call-site) dependency edges on the :class:`AnalysisResult` after
    the fixpoint — the provenance graph assertion blame slicing walks.
    It forces differential mode on (overriding both ``differential``
    and ``REPRO_DIFFERENTIAL``: without the clause-granular bookkeeping
    there are no edges to keep) and, like ``differential``, never
    changes the computed table.
    ``assertions`` carries the program's assertion directives (see
    :mod:`repro.assertions`) so they participate in the config hash:
    a cached payload with verdicts folded in can only be keyed by a
    config that pins the assertions it verified.
    """

    max_or_width: Optional[int] = None
    max_input_patterns: int = 8
    widening_delay: int = 2
    strict_widening_after: int = 12
    max_procedure_iterations: int = 200000
    type_database: Optional[list] = None  # §10 widening extension
    differential: bool = True
    scheduler: str = "lifo"
    keep_deps: bool = False
    #: tuple of :class:`repro.assertions.Assertion` (kept untyped to
    #: avoid an import cycle; the engine itself never reads it)
    assertions: tuple = ()


@dataclass
class AnalysisStats:
    procedure_iterations: int = 0
    clause_iterations: int = 0
    entries_created: int = 0
    entries_seeded: int = 0
    input_widenings: int = 0
    cpu_time: float = 0.0
    #: type-graph operation cache traffic attributed to this run (the
    #: delta of :func:`repro.typegraph.opcache.snapshot` across
    #: :meth:`Engine.analyze`); both stay 0 with caching disabled.
    opcache_hits: int = 0
    opcache_misses: int = 0
    #: clause runs the differential mode proved redundant and skipped
    #: (their cached output was joined instead of re-executing);
    #: ``clause_iterations + clause_iterations_skipped`` equals the
    #: clause work a non-differential engine performs for the same
    #: procedure iterations.
    clause_iterations_skipped: int = 0
    #: dirty clause runs that resumed from a pre-call-site snapshot
    #: instead of re-executing the clause from its head.
    callsite_resumptions: int = 0
    #: worklist policy the run used (provenance for bench reports).
    scheduler: str = "lifo"
    #: arena compilations attributed to this run (grammar arenas plus
    #: widening step indexes — the delta of
    #: :func:`repro.typegraph.arena.snapshot`); 0 with ``REPRO_ARENA``
    #: off.
    arena_compiles: int = 0
    #: oversized disjunctions the normalizer compiled to auxiliary
    #: predicates instead of cartesian expansion
    #: (:attr:`repro.prolog.normalize.NormProgram.disjunction_fallbacks`)
    #: — a warning-worthy signal that the source had pathological
    #: disjunctive nesting, not a soundness concern.
    disjunction_fallbacks: int = 0


@dataclass
class Entry:
    """One tabulated (input pattern, predicate, output pattern) tuple —
    the (β_in, p, β_out) triples of §2.  ``seeded`` marks entries
    imported from a previous run's table rather than iterated here.
    ``dependents`` holds caller *entry ids*; the differential engine
    additionally keeps per-call-site edges in
    ``Engine._callsite_deps`` and prunes both when a call site
    re-resolves elsewhere."""

    id: int
    pred: PredId
    beta_in: AbstractSubst
    beta_out: object = PAT_BOTTOM
    dependents: Set[int] = field(default_factory=set)
    updates: int = 0
    iterations: int = 0
    seeded: bool = False


class _ClauseState:
    """Differential-mode memory of one (entry, clause) pair.

    ``out`` is the clause's last output (valid once ``ran``); ``dirty``
    is ``None`` when the cached output is provably current, ``-1`` when
    the clause must run from its head, else the smallest dirty
    call-site ordinal (resume point).  ``callees`` / ``snapshots`` are
    parallel per-call-site records: the table entry the call resolved
    to and the builder snapshot taken just before the call."""

    __slots__ = ("out", "ran", "dirty", "callees", "snapshots")

    FROM_HEAD = -1

    def __init__(self) -> None:
        self.out = PAT_BOTTOM
        self.ran = False
        self.dirty: Optional[int] = self.FROM_HEAD
        self.callees: List[Optional[int]] = []
        self.snapshots: List[Optional[List[object]]] = []

    def mark_dirty(self, callsite: int) -> None:
        if self.dirty is None or callsite < self.dirty:
            self.dirty = callsite


class AnalysisResult:
    """Outcome of an analysis run: the full polyvariant table.

    Constructed by the engine (:meth:`from_engine`) or rebuilt from a
    serialized form (the service layer passes the parts directly, with
    ``program=None`` when only the table is of interest).
    """

    def __init__(self, program, domain,
                 stats: AnalysisStats, root_entry: Entry,
                 entries: List[Entry],
                 unknown_predicates: List[PredId]) -> None:
        self.program = program
        self.domain = domain
        self.stats = stats
        self.root_entry = root_entry
        self.entries = entries
        self.unknown_predicates = unknown_predicates
        self._by_pred: Dict[PredId, List[Entry]] = {}
        for entry in entries:
            self._by_pred.setdefault(entry.pred, []).append(entry)
        self._collapsed: Dict[PredId, Optional[Tuple[object, object]]] = {}
        #: provenance graph, retained only under
        #: ``AnalysisConfig(keep_deps=True)`` (see there); None
        #: otherwise.  ``callsite_deps`` maps callee entry id ->
        #: {(caller entry id, clause index, call-site ordinal)};
        #: ``clause_callees`` maps entry id -> per-clause callee entry
        #: ids, one per call site; ``clause_reached`` maps entry id ->
        #: per-clause "produced a non-bottom output" flags;
        #: ``call_positions`` maps (pred, clause index) -> body
        #: positions of the clause's call sites.
        self.callsite_deps: Optional[Dict[int, Set[Tuple[int, int,
                                                         int]]]] = None
        self.clause_callees: Optional[Dict[int,
                                           List[List[Optional[int]]]]] = None
        self.clause_reached: Optional[Dict[int, List[bool]]] = None
        self.call_positions: Optional[Dict[Tuple[PredId, int],
                                           List[int]]] = None

    @classmethod
    def from_engine(cls, engine: "Engine", root: Entry) -> "AnalysisResult":
        entries = sorted((e for es in engine.table.values() for e in es),
                         key=lambda e: e.id)
        result = cls(engine.program, engine.domain, engine.stats, root,
                     entries, sorted(engine.unknown_predicates))
        if engine.keep_deps:
            result.callsite_deps = {
                callee: set(edges)
                for callee, edges in engine._callsite_deps.items() if edges}
            result.clause_callees = {
                eid: [list(state.callees) for state in states]
                for eid, states in engine._clause_states.items()}
            result.clause_reached = {
                eid: [state.ran and state.out is not PAT_BOTTOM
                      for state in states]
                for eid, states in engine._clause_states.items()}
            # _call_positions fills lazily (resume paths only); force
            # it for every analyzed clause so the slicer can map any
            # call-site ordinal back to its body position.
            for eid in engine._clause_states:
                pred = engine.entries_by_id[eid].pred
                procedure = engine.program.procedure(pred)
                if procedure is not None:
                    for ci, clause in enumerate(procedure.clauses):
                        engine._callsites_of(pred, ci, clause)
            result.call_positions = dict(engine._call_positions)
        return result

    @property
    def output(self):
        """β_out of the queried predicate."""
        return self.root_entry.beta_out

    def tuples(self) -> List[Tuple[AbstractSubst, PredId, object]]:
        """All (β_in, p, β_out) tuples computed, root first."""
        return [(e.beta_in, e.pred, e.beta_out) for e in self.entries]

    def entries_for(self, pred: PredId) -> List[Entry]:
        return list(self._by_pred.get(pred, ()))

    def predicates(self) -> List[PredId]:
        """Analyzed predicates in first-entry order."""
        return list(self._by_pred)

    def collapsed_for(self, pred: PredId):
        """Single-version (β_in, β_out) for ``pred``: the join over all
        entries — the "no multiple specialization" view used by the
        accuracy tables (§9).  Memoized: tag extraction and grammar
        display ask for the same predicate repeatedly, and the table is
        immutable once built."""
        if pred in self._collapsed:
            return self._collapsed[pred]
        entries = self._by_pred.get(pred)
        if not entries:
            self._collapsed[pred] = None
            return None
        beta_in = PAT_BOTTOM
        beta_out = PAT_BOTTOM
        for entry in entries:
            beta_in = subst_join(beta_in, entry.beta_in, self.domain)
            beta_out = subst_join(beta_out, entry.beta_out, self.domain)
        self._collapsed[pred] = (beta_in, beta_out)
        return beta_in, beta_out


class Engine:
    """Analyzes one query against a normalized program."""

    def __init__(self, program: NormProgram,
                 domain: Optional[LeafDomain] = None,
                 config: Optional[AnalysisConfig] = None) -> None:
        self.program = program
        self.config = config if config is not None else AnalysisConfig()
        if domain is None:
            domain = TypeLeafDomain(self.config.max_or_width,
                                    self.config.type_database)
        self.domain = domain
        self.keep_deps: bool = bool(getattr(self.config, "keep_deps",
                                            False))
        env = _env_differential()
        self.differential: bool = (self.config.differential if env is None
                                   else env)
        if self.keep_deps:
            # No clause-granular bookkeeping means no edges to keep;
            # differential mode never changes the table, so forcing it
            # on is invisible to everything but the retained graph.
            self.differential = True
        if self.config.scheduler not in SCHEDULERS:
            raise ValueError("unknown scheduler: %r (expected one of %s)"
                             % (self.config.scheduler,
                                ", ".join(SCHEDULERS)))
        self.scheduler: str = self.config.scheduler
        self.table: Dict[PredId, List[Entry]] = {}
        # Memo of _solve's table scans, keyed by the (hash-indexed)
        # structural input pattern; invalidated per predicate whenever
        # an entry is appended, so a hit returns exactly what the scan
        # would.  Repeated call patterns — the common case, every
        # procedure iteration re-issues its calls — resolve in O(1).
        self._lookup_memo: Dict[PredId, Dict[AbstractSubst, Entry]] = {}
        self.general_entry: Dict[PredId, int] = {}
        self.input_widen_count: Dict[PredId, int] = {}
        self.entries_by_id: Dict[int, Entry] = {}
        #: LIFO stack of entry ids, or a heap of (scc, -seq, id)
        #: triples under the SCC scheduler.
        self.worklist: List = []
        self.queued: Set[int] = set()
        self._push_seq = 0
        self._scc_index: Optional[Dict[PredId, int]] = None
        if self.scheduler == "scc":
            # Local import: repro.analysis imports this module back.
            from ..analysis.callgraph import norm_scc_indices
            self._scc_index = norm_scc_indices(program)
        # -- differential state ------------------------------------------
        #: entry id -> one _ClauseState per clause of its procedure.
        self._clause_states: Dict[int, List[_ClauseState]] = {}
        #: callee entry id -> {(caller entry id, clause idx, call-site
        #: ordinal)} — the clause-granular dependency edges.
        self._callsite_deps: Dict[int, Set[Tuple[int, int, int]]] = {}
        #: (pred, clause idx) -> body positions of defined-pred calls.
        self._call_positions: Dict[Tuple[PredId, int], List[int]] = {}
        self.stats = AnalysisStats(
            scheduler=self.scheduler,
            disjunction_fallbacks=getattr(program,
                                          "disjunction_fallbacks", 0))
        self.unknown_predicates: Set[PredId] = set()

    # -- public API -----------------------------------------------------------

    def analyze(self, pred: PredId,
                beta_in: Optional[AbstractSubst] = None) -> AnalysisResult:
        """Run the fixpoint for ``pred`` called with ``beta_in``
        (default: all arguments Any)."""
        start = time.process_time()
        cache_hits, cache_misses = opcache.snapshot()
        arena_compiles = arena.snapshot()
        if beta_in is None:
            beta_in = subst_top(pred[1], self.domain)
        if not self.program.defined(pred):
            raise KeyError("undefined predicate: %s/%d" % pred)
        root = self._solve(pred, beta_in)
        self._run()
        self.stats.cpu_time += time.process_time() - start
        new_hits, new_misses = opcache.snapshot()
        self.stats.opcache_hits += new_hits - cache_hits
        self.stats.opcache_misses += new_misses - cache_misses
        self.stats.arena_compiles += arena.snapshot() - arena_compiles
        return AnalysisResult.from_engine(self, root)

    def seed_entry(self, pred: PredId, beta_in: AbstractSubst,
                   beta_out) -> Entry:
        """Pre-populate the table with a known-valid (β_in, p, β_out)
        tuple — incremental re-analysis seeds surviving entries of
        unchanged SCCs this way.  The entry is *not* scheduled: its
        output is already a fixpoint, so callers hitting it through
        :meth:`_solve` (exact input match only, see there) get the
        answer without any iteration."""
        if not self.program.defined(pred):
            raise KeyError("cannot seed undefined predicate: %s/%d" % pred)
        entry = Entry(len(self.entries_by_id), pred, beta_in, beta_out,
                      seeded=True)
        self.entries_by_id[entry.id] = entry
        self._append_entry(pred, entry)
        self.stats.entries_seeded += 1
        return entry

    def _append_entry(self, pred: PredId, entry: Entry) -> None:
        """Append to the predicate's entry list, invalidating the
        lookup memo (scan results may change once the list grows)."""
        self.table.setdefault(pred, []).append(entry)
        self._lookup_memo.pop(pred, None)

    # -- table management ------------------------------------------------------

    def _solve(self, pred: PredId, beta_in: AbstractSubst) -> Entry:
        """Entry whose input covers ``beta_in``, creating/widening as
        needed.  The two table scans below are memoized by structural
        input pattern (hash-indexed, O(1) on repeat calls); the memo is
        dropped whenever the entry list grows, so a hit is always
        exactly what the scans would return."""
        entries = self.table.setdefault(pred, [])
        memo = self._lookup_memo.get(pred)
        if memo is None:
            memo = self._lookup_memo[pred] = {}
        else:
            hit = memo.get(beta_in)
            if hit is not None:
                return hit
        for entry in entries:
            if subst_eq(beta_in, entry.beta_in, self.domain):
                memo[beta_in] = entry
                return entry
        for entry in entries:
            # Seeded entries are reused only on exact input matches:
            # covering a *smaller* input with an imported coarse output
            # would be sound but strictly less precise than analyzing
            # the small input fresh — and the caller may cache the
            # degraded result under the same key a cold run would use.
            if entry.seeded:
                continue
            if subst_le(beta_in, entry.beta_in, self.domain):
                memo[beta_in] = entry
                return entry
        if len(entries) >= self.config.max_input_patterns:
            # Call-pattern widening (§7.1 case 2): accumulate into one
            # *general* input per predicate, widening the join of all
            # inputs seen so far — this is what lets the accumulator
            # examples converge to S ::= 0 | c(Any,S) | d(Any,S).
            general_id = self.general_entry.get(pred)
            if general_id is None:
                old = entries[0].beta_in
                for entry in entries[1:]:
                    old = subst_join(old, entry.beta_in, self.domain)
            else:
                old = self.entries_by_id[general_id].beta_in
            count = self.input_widen_count.get(pred, 0)
            self.input_widen_count[pred] = count + 1
            strict = count >= self.config.strict_widening_after
            widened = subst_widen(
                old, subst_join(old, beta_in, self.domain), self.domain,
                strict)
            self.stats.input_widenings += 1
            if general_id is not None and subst_eq(
                    widened, self.entries_by_id[general_id].beta_in,
                    self.domain):
                return self.entries_by_id[general_id]
            beta_in = widened
            entry = Entry(len(self.entries_by_id), pred, beta_in)
            self.entries_by_id[entry.id] = entry
            self._append_entry(pred, entry)
            self.general_entry[pred] = entry.id
            self.stats.entries_created += 1
            self._schedule(entry)
            return entry
        entry = Entry(len(self.entries_by_id), pred, beta_in)
        self.entries_by_id[entry.id] = entry
        self._append_entry(pred, entry)
        self.stats.entries_created += 1
        self._schedule(entry)
        return entry

    # -- scheduling -----------------------------------------------------------

    def _schedule(self, entry: Entry) -> None:
        if entry.id in self.queued:
            return
        self.queued.add(entry.id)
        if self._scc_index is None:
            self.worklist.append(entry.id)
        else:
            # Callee-most SCC first (Tarjan emits callees before
            # callers, so a smaller index is a deeper component); ties
            # pop most-recently-pushed first, preserving the LIFO
            # descent inside one component.
            self._push_seq += 1
            heappush(self.worklist,
                     (self._scc_index.get(entry.pred, len(self._scc_index)),
                      -self._push_seq, entry.id))

    def _pop(self) -> int:
        if self._scc_index is None:
            # LIFO: newly discovered callees are analyzed before their
            # callers are retried — the top-down descent order of GAIA,
            # which lets callee types mature before callers widen.
            return self.worklist.pop()
        return heappop(self.worklist)[2]

    def _run(self) -> None:
        budget = self.config.max_procedure_iterations
        while self.worklist:
            if self.stats.procedure_iterations >= budget:
                raise AnalysisBudgetExceeded(
                    "procedure iteration budget exceeded (%d)" % budget)
            entry_id = self._pop()
            self.queued.discard(entry_id)
            self._analyze_entry(self.entries_by_id[entry_id])

    # -- one procedure iteration -------------------------------------------------

    def _analyze_entry(self, entry: Entry) -> None:
        self.stats.procedure_iterations += 1
        entry.iterations += 1
        procedure = self.program.procedure(entry.pred)
        assert procedure is not None
        differential = self.differential
        states: Optional[List[_ClauseState]] = None
        if differential:
            states = self._clause_states.get(entry.id)
            if states is None:
                states = [_ClauseState() for _ in procedure.clauses]
                self._clause_states[entry.id] = states
        result = PAT_BOTTOM
        for ci, clause in enumerate(procedure.clauses):
            if differential:
                state = states[ci]
                if state.ran and state.dirty is None:
                    # No call site of this clause saw a callee update
                    # since it last ran; re-execution would reproduce
                    # the cached output exactly (abstract execution is
                    # a deterministic function of β_in and the callee
                    # outputs), so join the cache instead.
                    self.stats.clause_iterations_skipped += 1
                    clause_out = state.out
                else:
                    self.stats.clause_iterations += 1
                    clause_out = self._exec_clause(entry, clause, ci, state)
                    state.out = clause_out
                    state.ran = True
                    state.dirty = None
            else:
                self.stats.clause_iterations += 1
                clause_out = self._exec_clause(entry, clause)
            result = subst_join(result, clause_out, self.domain)
        if result is PAT_BOTTOM:
            return  # nothing new
        if entry.beta_out is PAT_BOTTOM:
            new_out = result
        elif entry.updates < self.config.widening_delay:
            new_out = subst_join(entry.beta_out, result, self.domain)
        else:
            strict = entry.updates >= self.config.strict_widening_after
            new_out = subst_widen(entry.beta_out, result, self.domain,
                                  strict)
        if entry.beta_out is not PAT_BOTTOM and \
                subst_le(new_out, entry.beta_out, self.domain):
            return  # stable
        entry.beta_out = new_out
        entry.updates += 1
        if not differential:
            for dependent_id in entry.dependents:
                self._schedule(self.entries_by_id[dependent_id])
            return
        # Mark the exact (caller, clause, call site) triples that
        # consumed this entry's old output dirty, then schedule only
        # callers left with work: an entry whose clauses are all clean
        # would join its caches and change nothing, so skipping it is a
        # pure procedure-iteration saving (this is also what stops a
        # stale self-edge from rescheduling the entry it points to).
        for caller_id, ci, cs in self._callsite_deps.get(entry.id, ()):
            caller_states = self._clause_states.get(caller_id)
            if caller_states is not None:
                caller_states[ci].mark_dirty(cs)
        for dependent_id in entry.dependents:
            dep_states = self._clause_states.get(dependent_id)
            if dep_states is None or any(
                    state.dirty is not None for state in dep_states):
                self._schedule(self.entries_by_id[dependent_id])

    # -- abstract clause execution --------------------------------------------------

    def _callsites_of(self, pred: PredId, ci: int,
                      clause: NormClause) -> List[int]:
        """Body positions of this clause's defined-predicate calls
        (the call sites), cached per (pred, clause index)."""
        key = (pred, ci)
        positions = self._call_positions.get(key)
        if positions is None:
            positions = [pos for pos, goal in enumerate(clause.body)
                         if isinstance(goal, NCall)
                         and self.program.defined(goal.pred)]
            self._call_positions[key] = positions
        return positions

    def _exec_clause(self, entry: Entry, clause: NormClause,
                     ci: Optional[int] = None,
                     state: Optional[_ClauseState] = None):
        """Abstract execution of one clause against ``entry.beta_in``.

        With differential ``state``, execution resumes from the
        snapshot taken before the first dirty call site when one is
        available (the prefix re-runs nothing); otherwise — first run,
        head-dirty, or no snapshot — it starts from the clause head.
        """
        builder = make_builder(self.domain)
        start_pos = 0
        cs = 0
        resumed_at = -1
        if state is not None and state.ran:
            k = state.dirty
            if k is not None and 0 <= k < len(state.snapshots) \
                    and state.snapshots[k] is not None:
                builder, nodes = builder.fork(state.snapshots[k])
                start_pos = self._callsites_of(entry.pred, ci, clause)[k]
                cs = k
                resumed_at = k
                self.stats.callsite_resumptions += 1
        if resumed_at < 0:
            nodes = builder.instantiate(entry.beta_in)
            for _ in range(clause.pred[1], clause.nvars):
                nodes.append(builder.fresh_leaf())
        body = clause.body
        for pos in range(start_pos, len(body)):
            goal = body[pos]
            if isinstance(goal, NUnify):
                if not builder.unify(nodes[goal.a], nodes[goal.b]):
                    return self._finish_clause(entry, ci, state, cs,
                                               PAT_BOTTOM)
            elif isinstance(goal, NBuild):
                pattern = builder.make_pattern(
                    goal.name, goal.is_int, [nodes[a] for a in goal.args])
                if not builder.unify(nodes[goal.v], pattern):
                    return self._finish_clause(entry, ci, state, cs,
                                               PAT_BOTTOM)
            else:
                assert isinstance(goal, NCall)
                tracked = (state is not None
                           and self.program.defined(goal.pred))
                if tracked:
                    if cs != resumed_at:
                        # Snapshot the builder before the call so a
                        # later update of this call site's callee can
                        # resume right here.  (On the resume call site
                        # itself the stored snapshot is already this
                        # exact state.)
                        _, snap = builder.fork(nodes)
                        self._put_callsite(state, cs, snap)
                    ok = self._exec_call(entry, builder, nodes, goal,
                                         ci, cs, state)
                    cs += 1
                else:
                    ok = self._exec_call(entry, builder, nodes, goal)
                if not ok:
                    return self._finish_clause(entry, ci, state, cs,
                                               PAT_BOTTOM)
        return self._finish_clause(
            entry, ci, state, cs,
            builder.freeze(nodes[:clause.pred[1]]))

    def _finish_clause(self, entry: Entry, ci: Optional[int],
                       state: Optional[_ClauseState], reach: int,
                       clause_out):
        """Truncate per-call-site records past what this run reached —
        their snapshots would no longer reproduce full re-execution —
        and unsubscribe the dropped call sites from their callees."""
        if state is not None and len(state.callees) > reach:
            for cs in range(reach, len(state.callees)):
                old = state.callees[cs]
                if old is not None:
                    self._drop_callsite_dep(entry, old, ci, cs)
            del state.callees[reach:]
            del state.snapshots[reach:]
        return clause_out

    def _put_callsite(self, state: _ClauseState, cs: int,
                      snapshot: List[object]) -> None:
        if cs < len(state.snapshots):
            state.snapshots[cs] = snapshot
        else:
            state.snapshots.append(snapshot)
            state.callees.append(None)

    def _drop_callsite_dep(self, entry: Entry, old_callee_id: int,
                           ci: int, cs: int) -> None:
        """Remove the (entry, ci, cs) edge from ``old_callee_id``; when
        that was the entry's last call site into the old callee, prune
        the entry-level dependent edge too, so superseded entries stop
        rescheduling callers that no longer read them."""
        deps = self._callsite_deps.get(old_callee_id)
        if deps is None:
            return
        deps.discard((entry.id, ci, cs))
        if not any(caller == entry.id for caller, _, _ in deps):
            old_entry = self.entries_by_id.get(old_callee_id)
            if old_entry is not None:
                old_entry.dependents.discard(entry.id)

    def _bind_callsite(self, entry: Entry, ci: int, cs: int,
                       state: _ClauseState, callee: Entry) -> None:
        old = state.callees[cs]
        if old is not None and old != callee.id:
            # Input-pattern widening (or an earlier callee's growth)
            # re-resolved this call site: unsubscribe from the entry it
            # used to read, so its future updates no longer dirty us.
            self._drop_callsite_dep(entry, old, ci, cs)
        state.callees[cs] = callee.id
        self._callsite_deps.setdefault(callee.id, set()).add(
            (entry.id, ci, cs))

    def _exec_call(self, entry: Entry, builder: SubstBuilder,
                   nodes: List, goal: NCall,
                   ci: Optional[int] = None, cs: Optional[int] = None,
                   state: Optional[_ClauseState] = None) -> bool:
        arg_nodes = [nodes[a] for a in goal.args]
        if self.program.defined(goal.pred):
            beta_call = builder.freeze(arg_nodes)
            if beta_call is PAT_BOTTOM:
                return False
            callee = self._solve(goal.pred, beta_call)
            if state is not None:
                self._bind_callsite(entry, ci, cs, state, callee)
            callee.dependents.add(entry.id)
            if callee.beta_out is PAT_BOTTOM:
                return False  # no success known (yet)
            out_nodes = builder.instantiate(callee.beta_out)
            for caller_node, out_node in zip(arg_nodes, out_nodes):
                if not builder.unify(caller_node, out_node):
                    return False
            return True
        spec = BUILTINS.get(goal.pred)
        if spec is None:
            self.unknown_predicates.add(goal.pred)
            return True  # identity transfer is sound
        if spec.fails:
            return False
        for node, tag in zip(arg_nodes, spec.tags):
            if tag != "any":
                if not builder.constrain(node, tag_value(self.domain, tag)):
                    return False
        return True
