"""The fixpoint engine (paper §4, in the style of GAIA).

A worklist algorithm over a table of *entries* ``(pred, β_in) → β_out``:

* **polyvariant**: distinct input patterns get distinct entries, up to a
  per-predicate cap; beyond the cap new inputs are *widened* into the
  most recent entry's input (the call-pattern widening of §7.1 case 2,
  and the input-pattern collapsing discussed in §8/§9 for RE);
* clause bodies execute abstractly left-to-right on a
  :class:`~repro.domains.pattern.SubstBuilder`; procedure calls look up
  the table and record a dependency edge, so an improved callee result
  reschedules its callers;
* clause results are joined (operation UNION) and, after
  ``widening_delay`` updates, widened against the previous output
  (operation WIDEN) — delaying the widening "until the structure of the
  type appears clearly", as §2 requires for the AR1 example.

Statistics match Table 3: procedure iterations (entry analyses) and
clause iterations.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from ..domains.leaf import LeafDomain, TypeLeafDomain
from ..domains.pattern import (AbstractSubst, PAT_BOTTOM, SubstBuilder,
                               subst_eq, subst_join, subst_le, subst_top,
                               subst_widen)
from ..prolog.normalize import NBuild, NCall, NUnify, NormClause, NormProgram
from ..prolog.program import PredId
from ..typegraph import opcache
from .builtins import BUILTINS, tag_value

__all__ = ["AnalysisConfig", "AnalysisStats", "Entry", "AnalysisResult",
           "Engine", "AnalysisBudgetExceeded"]


class AnalysisBudgetExceeded(RuntimeError):
    """The global iteration budget was exhausted (safety net; should not
    happen — widening guarantees termination)."""


@dataclass
class AnalysisConfig:
    """Tunables of the analysis.

    ``max_or_width`` is Table 3's or-degree restriction (None, 5, 2).
    ``max_input_patterns`` bounds polyvariance per predicate.
    ``widening_delay`` counts output updates joined before widening
    kicks in.
    """

    max_or_width: Optional[int] = None
    max_input_patterns: int = 8
    widening_delay: int = 2
    strict_widening_after: int = 12
    max_procedure_iterations: int = 200000
    type_database: Optional[list] = None  # §10 widening extension


@dataclass
class AnalysisStats:
    procedure_iterations: int = 0
    clause_iterations: int = 0
    entries_created: int = 0
    entries_seeded: int = 0
    input_widenings: int = 0
    cpu_time: float = 0.0
    #: type-graph operation cache traffic attributed to this run (the
    #: delta of :func:`repro.typegraph.opcache.snapshot` across
    #: :meth:`Engine.analyze`); both stay 0 with caching disabled.
    opcache_hits: int = 0
    opcache_misses: int = 0


@dataclass
class Entry:
    """One tabulated (input pattern, predicate, output pattern) tuple —
    the (β_in, p, β_out) triples of §2.  ``seeded`` marks entries
    imported from a previous run's table rather than iterated here."""

    id: int
    pred: PredId
    beta_in: AbstractSubst
    beta_out: object = PAT_BOTTOM
    dependents: Set[int] = field(default_factory=set)
    updates: int = 0
    iterations: int = 0
    seeded: bool = False


class AnalysisResult:
    """Outcome of an analysis run: the full polyvariant table.

    Constructed by the engine (:meth:`from_engine`) or rebuilt from a
    serialized form (the service layer passes the parts directly, with
    ``program=None`` when only the table is of interest).
    """

    def __init__(self, program, domain,
                 stats: AnalysisStats, root_entry: Entry,
                 entries: List[Entry],
                 unknown_predicates: List[PredId]) -> None:
        self.program = program
        self.domain = domain
        self.stats = stats
        self.root_entry = root_entry
        self.entries = entries
        self.unknown_predicates = unknown_predicates
        self._by_pred: Dict[PredId, List[Entry]] = {}
        for entry in entries:
            self._by_pred.setdefault(entry.pred, []).append(entry)

    @classmethod
    def from_engine(cls, engine: "Engine", root: Entry) -> "AnalysisResult":
        entries = sorted((e for es in engine.table.values() for e in es),
                         key=lambda e: e.id)
        return cls(engine.program, engine.domain, engine.stats, root,
                   entries, sorted(engine.unknown_predicates))

    @property
    def output(self):
        """β_out of the queried predicate."""
        return self.root_entry.beta_out

    def tuples(self) -> List[Tuple[AbstractSubst, PredId, object]]:
        """All (β_in, p, β_out) tuples computed, root first."""
        return [(e.beta_in, e.pred, e.beta_out) for e in self.entries]

    def entries_for(self, pred: PredId) -> List[Entry]:
        return list(self._by_pred.get(pred, ()))

    def predicates(self) -> List[PredId]:
        """Analyzed predicates in first-entry order."""
        return list(self._by_pred)

    def collapsed_for(self, pred: PredId):
        """Single-version (β_in, β_out) for ``pred``: the join over all
        entries — the "no multiple specialization" view used by the
        accuracy tables (§9)."""
        entries = self._by_pred.get(pred)
        if not entries:
            return None
        beta_in = PAT_BOTTOM
        beta_out = PAT_BOTTOM
        for entry in entries:
            beta_in = subst_join(beta_in, entry.beta_in, self.domain)
            beta_out = subst_join(beta_out, entry.beta_out, self.domain)
        return beta_in, beta_out


class Engine:
    """Analyzes one query against a normalized program."""

    def __init__(self, program: NormProgram,
                 domain: Optional[LeafDomain] = None,
                 config: Optional[AnalysisConfig] = None) -> None:
        self.program = program
        self.config = config if config is not None else AnalysisConfig()
        if domain is None:
            domain = TypeLeafDomain(self.config.max_or_width,
                                    self.config.type_database)
        self.domain = domain
        self.table: Dict[PredId, List[Entry]] = {}
        # Memo of _solve's table scans, keyed by the (hash-indexed)
        # structural input pattern; invalidated per predicate whenever
        # an entry is appended, so a hit returns exactly what the scan
        # would.  Repeated call patterns — the common case, every
        # procedure iteration re-issues its calls — resolve in O(1).
        self._lookup_memo: Dict[PredId, Dict[AbstractSubst, Entry]] = {}
        self.general_entry: Dict[PredId, int] = {}
        self.input_widen_count: Dict[PredId, int] = {}
        self.entries_by_id: Dict[int, Entry] = {}
        self.worklist: List[int] = []
        self.queued: Set[int] = set()
        self.stats = AnalysisStats()
        self.unknown_predicates: Set[PredId] = set()

    # -- public API -----------------------------------------------------------

    def analyze(self, pred: PredId,
                beta_in: Optional[AbstractSubst] = None) -> AnalysisResult:
        """Run the fixpoint for ``pred`` called with ``beta_in``
        (default: all arguments Any)."""
        start = time.process_time()
        cache_hits, cache_misses = opcache.snapshot()
        if beta_in is None:
            beta_in = subst_top(pred[1], self.domain)
        if not self.program.defined(pred):
            raise KeyError("undefined predicate: %s/%d" % pred)
        root = self._solve(pred, beta_in)
        self._run()
        self.stats.cpu_time += time.process_time() - start
        new_hits, new_misses = opcache.snapshot()
        self.stats.opcache_hits += new_hits - cache_hits
        self.stats.opcache_misses += new_misses - cache_misses
        return AnalysisResult.from_engine(self, root)

    def seed_entry(self, pred: PredId, beta_in: AbstractSubst,
                   beta_out) -> Entry:
        """Pre-populate the table with a known-valid (β_in, p, β_out)
        tuple — incremental re-analysis seeds surviving entries of
        unchanged SCCs this way.  The entry is *not* scheduled: its
        output is already a fixpoint, so callers hitting it through
        :meth:`_solve` (exact input match only, see there) get the
        answer without any iteration."""
        if not self.program.defined(pred):
            raise KeyError("cannot seed undefined predicate: %s/%d" % pred)
        entry = Entry(len(self.entries_by_id), pred, beta_in, beta_out,
                      seeded=True)
        self.entries_by_id[entry.id] = entry
        self._append_entry(pred, entry)
        self.stats.entries_seeded += 1
        return entry

    def _append_entry(self, pred: PredId, entry: Entry) -> None:
        """Append to the predicate's entry list, invalidating the
        lookup memo (scan results may change once the list grows)."""
        self.table.setdefault(pred, []).append(entry)
        self._lookup_memo.pop(pred, None)

    # -- table management ------------------------------------------------------

    def _solve(self, pred: PredId, beta_in: AbstractSubst) -> Entry:
        """Entry whose input covers ``beta_in``, creating/widening as
        needed.  The two table scans below are memoized by structural
        input pattern (hash-indexed, O(1) on repeat calls); the memo is
        dropped whenever the entry list grows, so a hit is always
        exactly what the scans would return."""
        entries = self.table.setdefault(pred, [])
        memo = self._lookup_memo.get(pred)
        if memo is None:
            memo = self._lookup_memo[pred] = {}
        else:
            hit = memo.get(beta_in)
            if hit is not None:
                return hit
        for entry in entries:
            if subst_eq(beta_in, entry.beta_in, self.domain):
                memo[beta_in] = entry
                return entry
        for entry in entries:
            # Seeded entries are reused only on exact input matches:
            # covering a *smaller* input with an imported coarse output
            # would be sound but strictly less precise than analyzing
            # the small input fresh — and the caller may cache the
            # degraded result under the same key a cold run would use.
            if entry.seeded:
                continue
            if subst_le(beta_in, entry.beta_in, self.domain):
                memo[beta_in] = entry
                return entry
        if len(entries) >= self.config.max_input_patterns:
            # Call-pattern widening (§7.1 case 2): accumulate into one
            # *general* input per predicate, widening the join of all
            # inputs seen so far — this is what lets the accumulator
            # examples converge to S ::= 0 | c(Any,S) | d(Any,S).
            general_id = self.general_entry.get(pred)
            if general_id is None:
                old = entries[0].beta_in
                for entry in entries[1:]:
                    old = subst_join(old, entry.beta_in, self.domain)
            else:
                old = self.entries_by_id[general_id].beta_in
            count = self.input_widen_count.get(pred, 0)
            self.input_widen_count[pred] = count + 1
            strict = count >= self.config.strict_widening_after
            widened = subst_widen(
                old, subst_join(old, beta_in, self.domain), self.domain,
                strict)
            self.stats.input_widenings += 1
            if general_id is not None and subst_eq(
                    widened, self.entries_by_id[general_id].beta_in,
                    self.domain):
                return self.entries_by_id[general_id]
            beta_in = widened
            entry = Entry(len(self.entries_by_id), pred, beta_in)
            self.entries_by_id[entry.id] = entry
            self._append_entry(pred, entry)
            self.general_entry[pred] = entry.id
            self.stats.entries_created += 1
            self._schedule(entry)
            return entry
        entry = Entry(len(self.entries_by_id), pred, beta_in)
        self.entries_by_id[entry.id] = entry
        self._append_entry(pred, entry)
        self.stats.entries_created += 1
        self._schedule(entry)
        return entry

    def _schedule(self, entry: Entry) -> None:
        if entry.id not in self.queued:
            self.queued.add(entry.id)
            self.worklist.append(entry.id)

    def _run(self) -> None:
        budget = self.config.max_procedure_iterations
        while self.worklist:
            if self.stats.procedure_iterations >= budget:
                raise AnalysisBudgetExceeded(
                    "procedure iteration budget exceeded (%d)" % budget)
            # LIFO: newly discovered callees are analyzed before their
            # callers are retried — the top-down descent order of GAIA,
            # which lets callee types mature before callers widen.
            entry_id = self.worklist.pop()
            self.queued.discard(entry_id)
            self._analyze_entry(self.entries_by_id[entry_id])

    # -- one procedure iteration -------------------------------------------------

    def _analyze_entry(self, entry: Entry) -> None:
        self.stats.procedure_iterations += 1
        entry.iterations += 1
        procedure = self.program.procedure(entry.pred)
        assert procedure is not None
        result = PAT_BOTTOM
        for clause in procedure.clauses:
            self.stats.clause_iterations += 1
            clause_out = self._exec_clause(entry, clause)
            result = subst_join(result, clause_out, self.domain)
        if result is PAT_BOTTOM:
            return  # nothing new
        if entry.beta_out is PAT_BOTTOM:
            new_out = result
        elif entry.updates < self.config.widening_delay:
            new_out = subst_join(entry.beta_out, result, self.domain)
        else:
            strict = entry.updates >= self.config.strict_widening_after
            new_out = subst_widen(entry.beta_out, result, self.domain,
                                  strict)
        if entry.beta_out is not PAT_BOTTOM and \
                subst_le(new_out, entry.beta_out, self.domain):
            return  # stable
        entry.beta_out = new_out
        entry.updates += 1
        for dependent_id in entry.dependents:
            self._schedule(self.entries_by_id[dependent_id])

    # -- abstract clause execution --------------------------------------------------

    def _exec_clause(self, entry: Entry, clause: NormClause):
        builder = SubstBuilder(self.domain)
        nodes = builder.instantiate(entry.beta_in)
        for _ in range(clause.pred[1], clause.nvars):
            nodes.append(builder.fresh_leaf())
        for goal in clause.body:
            if isinstance(goal, NUnify):
                if not builder.unify(nodes[goal.a], nodes[goal.b]):
                    return PAT_BOTTOM
            elif isinstance(goal, NBuild):
                pattern = builder.make_pattern(
                    goal.name, goal.is_int, [nodes[a] for a in goal.args])
                if not builder.unify(nodes[goal.v], pattern):
                    return PAT_BOTTOM
            else:
                assert isinstance(goal, NCall)
                if not self._exec_call(entry, builder, nodes, goal):
                    return PAT_BOTTOM
        return builder.freeze(nodes[:clause.pred[1]])

    def _exec_call(self, entry: Entry, builder: SubstBuilder,
                   nodes: List, goal: NCall) -> bool:
        arg_nodes = [nodes[a] for a in goal.args]
        if self.program.defined(goal.pred):
            beta_call = builder.freeze(arg_nodes)
            if beta_call is PAT_BOTTOM:
                return False
            callee = self._solve(goal.pred, beta_call)
            callee.dependents.add(entry.id)
            if callee.beta_out is PAT_BOTTOM:
                return False  # no success known (yet)
            out_nodes = builder.instantiate(callee.beta_out)
            for caller_node, out_node in zip(arg_nodes, out_nodes):
                if not builder.unify(caller_node, out_node):
                    return False
            return True
        spec = BUILTINS.get(goal.pred)
        if spec is None:
            self.unknown_predicates.add(goal.pred)
            return True  # identity transfer is sound
        if spec.fails:
            return False
        for node, tag in zip(arg_nodes, spec.tags):
            if tag != "any":
                if not builder.constrain(node, tag_value(self.domain, tag)):
                    return False
        return True
