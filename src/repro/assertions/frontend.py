"""Assertion directives: the frontend of the verification product.

Programs declare intent inline, as ordinary Prolog directives the
parser already diverts into :attr:`repro.prolog.program.Program.directives`:

* ``:- assert_pattern(p/N, [Spec1, ..., SpecN]).`` — every computed
  success pattern (β_out) of ``p/N`` must lie below the declared
  pattern;
* ``:- assert_calls(p/N, [Spec1, ..., SpecN]).`` — every computed call
  pattern (β_in) of ``p/N`` must lie below it.

Each ``Spec`` is a term of the pattern-spec mini-language, one per
predicate argument:

=====================  ====================================================
spec                   meaning
=====================  ====================================================
``any``                any term (leaf ``Any``)
``int``                any integer (type-grammar leaf; ``any`` under the
                       baseline domain, which has no leaf information)
``list`` / ``codes``   any proper list / any list of integers
``list(G)``            a proper list of ``G`` (``G`` a grammar spec:
                       ``any``, ``int``, ``codes``, ``list(...)``)
``foo`` (other atom)   exactly the atom ``foo``
``atom(A)``            exactly the atom ``A`` (escape hatch for atoms
                       named like reserved words, e.g. ``atom(any)``)
``42`` (integer)       exactly that integer
``f(S1, ..., Sk)``     a compound with functor ``f/k`` whose arguments
                       match the sub-specs (``[S|T]`` list syntax works:
                       it is ``'.'/2``)
``X`` (variable)       any term, but every occurrence of ``X`` across
                       the spec list is the *same* value (a sharing
                       group)
=====================  ====================================================

An :class:`Assertion` stores the specs in canonical text form
(:func:`repro.prolog.terms.format_term`), which makes serialization,
hashing, and equality trivial and keeps the object independent of the
term representation.  :mod:`repro.assertions.compiler` lowers the specs
into the analysis domain.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

from ..prolog.parser import parse_term
from ..prolog.program import PredId, Program
from ..prolog.terms import (Atom, Int, Struct, Term, Var, format_term,
                            list_elements)

__all__ = ["ASSERTION_DIRECTIVES", "Assertion", "AssertionSyntaxError",
           "assertion_from_directive", "harvest_assertions",
           "parse_assertion"]

#: Directive functors the frontend recognizes, mapped to verdict kind.
ASSERTION_DIRECTIVES = {"assert_pattern": "pattern",
                        "assert_calls": "calls"}

#: Reserved atoms of the grammar sublanguage (use ``atom(...)`` to
#: assert a literal atom with one of these names).
GRAMMAR_ATOMS = ("any", "int", "list", "codes")


class AssertionSyntaxError(ValueError):
    """A malformed assertion directive (wrong shape, unknown spec)."""


@dataclass(frozen=True)
class Assertion:
    """One parsed assertion directive.

    ``kind`` is ``"pattern"`` (checks β_out) or ``"calls"`` (checks
    β_in); ``specs`` holds one canonical spec text per argument of
    ``pred``.  ``line`` is display-only provenance (excluded from
    equality/hashing so the same assertion at a different source line
    compares equal)."""

    kind: str
    pred: PredId
    specs: Tuple[str, ...]
    line: int = field(default=0, compare=False)

    def __post_init__(self) -> None:
        if self.kind not in ("pattern", "calls"):
            raise AssertionSyntaxError(
                "unknown assertion kind %r" % (self.kind,))
        if len(self.specs) != self.pred[1]:
            raise AssertionSyntaxError(
                "%s/%d assertion needs %d spec(s), got %d"
                % (self.pred[0], self.pred[1], self.pred[1],
                   len(self.specs)))

    @property
    def directive(self) -> str:
        return ("assert_pattern" if self.kind == "pattern"
                else "assert_calls")

    @property
    def key(self) -> str:
        """Canonical one-line rendering — the stable identity blame
        slices and reports refer to."""
        return "%s(%s/%d, [%s])" % (self.directive, self.pred[0],
                                    self.pred[1], ", ".join(self.specs))

    def spec_terms(self) -> Tuple[Term, ...]:
        """The specs re-parsed as terms (canonical text round-trips
        through the default operator table)."""
        return tuple(parse_term(text) for text in self.specs)

    def to_obj(self) -> dict:
        return {"kind": self.kind, "pred": list(self.pred),
                "specs": list(self.specs), "line": self.line}

    @classmethod
    def from_obj(cls, data: dict) -> "Assertion":
        return cls(kind=data["kind"],
                   pred=(data["pred"][0], int(data["pred"][1])),
                   specs=tuple(data["specs"]),
                   line=int(data.get("line") or 0))


def _validate_spec(term: Term, context: str) -> None:
    """Reject specs the compiler cannot lower (fail at parse time, not
    inside a worker process)."""
    if isinstance(term, (Var, Int)):
        return
    if isinstance(term, Atom):
        return  # reserved words and literal atoms are both fine
    if isinstance(term, Struct):
        if term.name == "atom" and term.arity == 1:
            if not isinstance(term.args[0], Atom):
                raise AssertionSyntaxError(
                    "%s: atom(...) takes a plain atom, got %s"
                    % (context, format_term(term.args[0])))
            return
        if term.name == "list" and term.arity == 1:
            _validate_grammar_spec(term.args[0], context)
            return
        for arg in term.args:
            _validate_spec(arg, context)
        return
    raise AssertionSyntaxError("%s: cannot use %s as a spec"
                               % (context, format_term(term)))


def _validate_grammar_spec(term: Term, context: str) -> None:
    if isinstance(term, Atom) and term.name in GRAMMAR_ATOMS:
        return
    if isinstance(term, Struct) and term.name == "list" \
            and term.arity == 1:
        _validate_grammar_spec(term.args[0], context)
        return
    raise AssertionSyntaxError(
        "%s: list(...) takes a grammar spec (%s or list(...)), got %s"
        % (context, "/".join(GRAMMAR_ATOMS), format_term(term)))


def assertion_from_directive(term: Term,
                             line: int = 0) -> Optional[Assertion]:
    """Parse one directive term into an :class:`Assertion`; None when
    the directive is not an assertion at all.  Raises
    :class:`AssertionSyntaxError` on a malformed assertion."""
    if not isinstance(term, Struct):
        return None
    kind = ASSERTION_DIRECTIVES.get(term.name)
    if kind is None:
        return None
    if term.arity != 2:
        raise AssertionSyntaxError(
            "%s takes 2 arguments (p/N, [specs]), got %d"
            % (term.name, term.arity))
    indicator, spec_list = term.args
    if not (isinstance(indicator, Struct) and indicator.name == "/"
            and indicator.arity == 2
            and isinstance(indicator.args[0], Atom)
            and isinstance(indicator.args[1], Int)
            and indicator.args[1].value >= 0):
        raise AssertionSyntaxError(
            "%s: first argument must be name/arity, got %s"
            % (term.name, format_term(indicator)))
    pred = (indicator.args[0].name, indicator.args[1].value)
    specs, tail = list_elements(spec_list)
    if tail != Atom("[]"):
        raise AssertionSyntaxError(
            "%s: second argument must be a proper list of specs, got %s"
            % (term.name, format_term(spec_list)))
    context = "%s(%s/%d)" % (term.name, pred[0], pred[1])
    for spec in specs:
        _validate_spec(spec, context)
    return Assertion(kind, pred,
                     tuple(format_term(spec) for spec in specs), line)


def harvest_assertions(program: Program) -> Tuple[Assertion, ...]:
    """All assertion directives of ``program``, in source order."""
    lines = list(getattr(program, "directive_lines", ()) or ())
    lines += [0] * (len(program.directives) - len(lines))
    found: List[Assertion] = []
    for directive, line in zip(program.directives, lines):
        assertion = assertion_from_directive(directive, line)
        if assertion is not None:
            found.append(assertion)
    return tuple(found)


def parse_assertion(text: str) -> Assertion:
    """Parse one assertion from directive text, with or without the
    ``:-`` wrapper — ``assert_pattern(p/1, [int])`` and
    ``:- assert_pattern(p/1, [int]).`` both work."""
    term = parse_term(text)
    if isinstance(term, Struct) and term.name == ":-" and term.arity == 1:
        term = term.args[0]
    assertion = assertion_from_directive(term)
    if assertion is None:
        raise AssertionSyntaxError(
            "not an assertion directive: %s" % text.strip())
    return assertion
