"""Evaluating assertions against a computed analysis table.

Each assertion compiles to a frozen pattern (see
:mod:`repro.assertions.compiler`) and is compared, via
:func:`~repro.domains.pattern.subst_le`, against every table entry of
its predicate — β_out for ``assert_pattern``, β_in for
``assert_calls``.  Verdicts:

* ``verified`` — every non-bottom β of the predicate lies below the
  declared pattern;
* ``violated`` — at least one entry escapes it (the offending entry
  ids are recorded; :mod:`repro.assertions.slicer` turns them into a
  blame slice);
* ``unreachable`` — the predicate has no entry with a non-bottom β:
  the analysis never saw it called (``calls``) or never proved a
  success (``pattern``), so the assertion is vacuous — worth a warning,
  not a failure.

Everything here is a deterministic function of the interned analysis
table and the assertion list, so verdict objects — and their canonical
JSON — are bit-identical across kernel tiers and cache-warm/cold runs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from ..domains.leaf import LeafDomain
from ..domains.pattern import PAT_BOTTOM, display_subst, subst_le
from .compiler import compile_assertion
from .frontend import Assertion

__all__ = ["VERIFIED", "VIOLATED", "UNREACHABLE", "Verdict",
           "CheckReport", "check_result"]

VERIFIED = "verified"
VIOLATED = "violated"
UNREACHABLE = "unreachable"


@dataclass
class Verdict:
    """The outcome of one assertion against one analysis table."""

    assertion: Assertion
    status: str
    #: table entry ids with a non-bottom β that were compared
    checked_entries: List[int] = field(default_factory=list)
    #: the subset whose β escapes the declared pattern
    offending_entries: List[int] = field(default_factory=list)
    #: human-readable β renderings for the offending entries
    details: List[str] = field(default_factory=list)

    def to_obj(self) -> dict:
        return {"assertion": self.assertion.to_obj(),
                "status": self.status,
                "checked_entries": list(self.checked_entries),
                "offending_entries": list(self.offending_entries),
                "details": list(self.details)}

    @classmethod
    def from_obj(cls, data: dict) -> "Verdict":
        return cls(assertion=Assertion.from_obj(data["assertion"]),
                   status=data["status"],
                   checked_entries=[int(i) for i in
                                    data.get("checked_entries", ())],
                   offending_entries=[int(i) for i in
                                      data.get("offending_entries", ())],
                   details=list(data.get("details", ())))


@dataclass
class CheckReport:
    """All verdicts of one check run."""

    verdicts: List[Verdict] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return all(v.status != VIOLATED for v in self.verdicts)

    def counts(self) -> Dict[str, int]:
        counts = {VERIFIED: 0, VIOLATED: 0, UNREACHABLE: 0}
        for verdict in self.verdicts:
            counts[verdict.status] = counts.get(verdict.status, 0) + 1
        return counts

    def violations(self) -> List[Verdict]:
        return [v for v in self.verdicts if v.status == VIOLATED]

    def to_obj(self) -> dict:
        return {"verdicts": [v.to_obj() for v in self.verdicts]}

    @classmethod
    def from_obj(cls, data: dict) -> "CheckReport":
        return cls([Verdict.from_obj(v)
                    for v in data.get("verdicts", ())])


def _entry_beta(entry, kind: str):
    return entry.beta_out if kind == "pattern" else entry.beta_in


def check_result(result, domain: LeafDomain,
                 assertions: Sequence[Assertion]) -> CheckReport:
    """Evaluate ``assertions`` against an
    :class:`~repro.fixpoint.engine.AnalysisResult`."""
    report = CheckReport()
    for assertion in assertions:
        spec = compile_assertion(assertion, domain)
        names = ["arg%d" % (i + 1) for i in range(assertion.pred[1])]
        checked: List[int] = []
        offending: List[int] = []
        details: List[str] = []
        for entry in result.entries_for(assertion.pred):
            beta = _entry_beta(entry, assertion.kind)
            if beta is PAT_BOTTOM:
                continue
            checked.append(entry.id)
            if spec is PAT_BOTTOM or not subst_le(beta, spec, domain):
                offending.append(entry.id)
                rendering = display_subst(beta, domain, names)
                details.append("entry %d: %s" % (
                    entry.id, "; ".join(rendering.splitlines())))
        status = (UNREACHABLE if not checked
                  else VIOLATED if offending else VERIFIED)
        report.verdicts.append(Verdict(assertion, status, checked,
                                       offending, details))
    return report
