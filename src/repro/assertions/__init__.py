"""Assertion checking and blame slicing — the verification product.

Source programs declare intent with ``:- assert_pattern(p/N, [...])``
/ ``:- assert_calls(p/N, [...])`` directives; this package parses them
(:mod:`~repro.assertions.frontend`), lowers the specs into the
analysis domain (:mod:`~repro.assertions.compiler`), evaluates them
against the computed table (:mod:`~repro.assertions.checker`), and on
violation walks the retained dependency graph back to the guilty
clauses and call sites (:mod:`~repro.assertions.slicer`).

Served end-to-end: the ``check``/``slice`` server ops, the router, and
the ``repro check`` CLI all go through :func:`check_analysis` below.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from .checker import (UNREACHABLE, VERIFIED, VIOLATED, CheckReport,
                      Verdict, check_result)
from .compiler import compile_assertion
from .frontend import (ASSERTION_DIRECTIVES, Assertion,
                       AssertionSyntaxError, assertion_from_directive,
                       harvest_assertions, parse_assertion)
from .slicer import BlameSlice, SliceStep, blame_slices

__all__ = [
    "ASSERTION_DIRECTIVES", "Assertion", "AssertionSyntaxError",
    "BlameSlice", "CheckReport", "SliceStep", "UNREACHABLE", "VERIFIED",
    "VIOLATED", "Verdict", "assertion_from_directive", "blame_slices",
    "check_analysis", "check_result", "compile_assertion",
    "harvest_assertions", "parse_assertion",
]


def check_analysis(analysis, assertions: Optional[Sequence[Assertion]]
                   = None, with_slices: bool = True
                   ) -> Tuple[CheckReport, List[BlameSlice]]:
    """Check a :class:`~repro.analysis.analyzer.TypeAnalysis` against
    ``assertions`` (default: the ones declared in its own source) and,
    when violations exist and the run retained its dependency graph,
    compute their blame slices."""
    if assertions is None:
        assertions = harvest_assertions(analysis.program)
    report = check_result(analysis.result, analysis.domain, assertions)
    slices: List[BlameSlice] = []
    if with_slices and not report.ok \
            and analysis.result.callsite_deps is not None:
        slices = blame_slices(analysis.result, analysis.norm, report)
    return report, slices
