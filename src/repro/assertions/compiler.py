"""Lowering assertion specs into the analysis domain.

A spec list compiles to one :class:`~repro.domains.pattern.AbstractSubst`
over the predicate's arguments, built with the same
:func:`~repro.domains.pattern.make_builder` the fixpoint engine uses —
so the compiled pattern lives on whatever kernel tier is active and
freezes to the identical interned instance on every tier (the basis
for tier-stable verdicts).  Checking an assertion is then a single
:func:`~repro.domains.pattern.subst_le` against the computed β.

Grammar leaves (``any``/``int``/``list``/``codes``/``list(G)``) carry
type information only under :class:`~repro.domains.leaf.TypeLeafDomain`;
the baseline principal-functor domain has no leaf values, so they all
degrade to plain ``Any`` leaves there (functor shapes and sharing
groups still check).
"""

from __future__ import annotations

from typing import Dict, List

from ..domains.leaf import LeafDomain, TypeLeafDomain
from ..domains.pattern import AbstractSubst, make_builder
from ..prolog.terms import Atom, Int, Struct, Term, Var
from ..typegraph.grammar import g_any, g_int
from ..typegraph.ops import g_list_of
from .frontend import Assertion, AssertionSyntaxError

__all__ = ["compile_assertion", "spec_grammar"]

_GRAMMAR_MAKERS = {
    "any": g_any,
    "int": g_int,
    "list": lambda: g_list_of(g_any()),
    "codes": lambda: g_list_of(g_int()),
}


def spec_grammar(term: Term):
    """The grammar a grammar-sublanguage spec denotes."""
    if isinstance(term, Atom):
        maker = _GRAMMAR_MAKERS.get(term.name)
        if maker is not None:
            return maker()
    if isinstance(term, Struct) and term.name == "list" \
            and term.arity == 1:
        return g_list_of(spec_grammar(term.args[0]))
    raise AssertionSyntaxError("not a grammar spec: %r" % (term,))


def _grammar_leaf(builder, domain: LeafDomain, term: Term):
    if isinstance(domain, TypeLeafDomain):
        return builder.fresh_leaf(spec_grammar(term))
    return builder.fresh_leaf()  # baseline: no leaf information


def _compile(builder, domain: LeafDomain, term: Term,
             shared: Dict[str, object]):
    if isinstance(term, Var):
        node = shared.get(term.name)
        if node is None:
            node = shared[term.name] = builder.fresh_leaf()
        return node
    if isinstance(term, Int):
        return builder.make_pattern(str(term.value), True, [])
    if isinstance(term, Atom):
        if term.name in _GRAMMAR_MAKERS:
            return _grammar_leaf(builder, domain, term)
        return builder.make_pattern(term.name, False, [])
    assert isinstance(term, Struct)
    if term.name == "atom" and term.arity == 1 \
            and isinstance(term.args[0], Atom):
        return builder.make_pattern(term.args[0].name, False, [])
    if term.name == "list" and term.arity == 1:
        return _grammar_leaf(builder, domain, term)
    children = [_compile(builder, domain, arg, shared)
                for arg in term.args]
    return builder.make_pattern(term.name, False, children)


def compile_assertion(assertion: Assertion,
                      domain: LeafDomain) -> AbstractSubst:
    """The assertion's spec list as one frozen abstract substitution
    over the predicate's arguments (sharing groups span the whole
    list: the same variable in two argument specs is one node)."""
    builder = make_builder(domain)
    shared: Dict[str, object] = {}
    roots: List[object] = [_compile(builder, domain, term, shared)
                           for term in assertion.spec_terms()]
    return builder.freeze(roots)
