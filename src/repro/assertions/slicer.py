"""Blame slicing: from a violated assertion to the code that caused it.

The differential engine records, for every table entry, exactly which
(caller entry, clause, call site) triples consumed its output
(:attr:`repro.fixpoint.engine.Engine._callsite_deps`).  Run under
``AnalysisConfig(keep_deps=True)`` that graph survives the fixpoint on
the :class:`~repro.fixpoint.engine.AnalysisResult`, and a violation
slices it two ways:

* **producing clauses** — the violated entry's own clauses that
  produced a non-bottom output are the ones whose join escaped the
  declared pattern (an ``assert_pattern`` violation is manufactured
  here);
* **contributing call sites** — walking the dependency edges backwards
  from the violated entry names every (caller clause, body position)
  through which the offending call pattern flowed, up to the root
  query (an ``assert_calls`` violation blames this chain; for
  ``assert_pattern`` it shows how the bad result propagates out).

Steps are anchored to source: each carries the originating clause's
text and 1-based line (:attr:`repro.prolog.program.Clause.line`), plus
the normalized goal at the call site.  The walk is deterministic
(sorted edges, BFS with a visited set), so slices — like verdicts —
are fingerprint-stable.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from ..prolog.normalize import NormProgram
from ..prolog.program import PredId
from .checker import CheckReport, VIOLATED, Verdict

__all__ = ["SliceStep", "BlameSlice", "blame_slices"]


@dataclass
class SliceStep:
    """One element of a blame slice.

    ``role`` is ``"clause"`` (a producing clause of the violated
    entry) or ``"call-site"`` (a caller's call through which the
    pattern flowed).  ``clause_index`` indexes the *normalized*
    procedure; ``body_pos``/``goal`` locate the call inside it
    (clause steps have neither).  ``source``/``line`` anchor the step
    to the original program text."""

    role: str
    pred: PredId
    entry_id: int
    clause_index: int
    body_pos: Optional[int] = None
    goal: Optional[str] = None
    source: Optional[str] = None
    line: int = 0
    #: hops from the violated entry (0 = its own clauses)
    depth: int = 0

    def to_obj(self) -> dict:
        return {"role": self.role, "pred": list(self.pred),
                "entry": self.entry_id, "clause": self.clause_index,
                "body_pos": self.body_pos, "goal": self.goal,
                "source": self.source, "line": self.line,
                "depth": self.depth}

    @classmethod
    def from_obj(cls, data: dict) -> "SliceStep":
        return cls(role=data["role"],
                   pred=(data["pred"][0], int(data["pred"][1])),
                   entry_id=int(data["entry"]),
                   clause_index=int(data["clause"]),
                   body_pos=data.get("body_pos"),
                   goal=data.get("goal"),
                   source=data.get("source"),
                   line=int(data.get("line") or 0),
                   depth=int(data.get("depth") or 0))


@dataclass
class BlameSlice:
    """The minimal clause/call-site slice for one offending entry of
    one violated assertion."""

    assertion_key: str
    pred: PredId
    entry_id: int
    steps: List[SliceStep] = field(default_factory=list)

    def to_obj(self) -> dict:
        return {"assertion": self.assertion_key,
                "pred": list(self.pred), "entry": self.entry_id,
                "steps": [s.to_obj() for s in self.steps]}

    @classmethod
    def from_obj(cls, data: dict) -> "BlameSlice":
        return cls(assertion_key=data["assertion"],
                   pred=(data["pred"][0], int(data["pred"][1])),
                   entry_id=int(data["entry"]),
                   steps=[SliceStep.from_obj(s)
                          for s in data.get("steps", ())])


def _source_anchor(norm: Optional[NormProgram], pred: PredId,
                   clause_index: int):
    """(source text, line, normalized clause) for one clause of the
    normalized program; Nones when out of range or norm is absent."""
    if norm is None:
        return None, 0, None
    procedure = norm.procedure(pred)
    if procedure is None or clause_index >= len(procedure.clauses):
        return None, 0, None
    clause = procedure.clauses[clause_index]
    source = clause.source
    if source is not None:
        return repr(source), source.line or 0, clause
    return repr(clause), 0, clause


def _slice_for_entry(result, norm: Optional[NormProgram],
                     verdict: Verdict, entry_id: int) -> BlameSlice:
    entries = {entry.id: entry for entry in result.entries}
    pred = verdict.assertion.pred
    blame = BlameSlice(verdict.assertion.key, pred, entry_id)

    # Producing clauses of the violated entry itself.
    reached = (result.clause_reached or {}).get(entry_id, ())
    for clause_index, produced in enumerate(reached):
        if not produced:
            continue
        source, line, _ = _source_anchor(norm, pred, clause_index)
        blame.steps.append(SliceStep("clause", pred, entry_id,
                                     clause_index, source=source,
                                     line=line))

    # Backward walk over the call-site dependency edges.
    deps = result.callsite_deps or {}
    seen = {entry_id}
    frontier = deque([(entry_id, 0)])
    while frontier:
        callee_id, depth = frontier.popleft()
        for caller_id, clause_index, callsite in sorted(
                deps.get(callee_id, ())):
            caller = entries.get(caller_id)
            if caller is None:
                continue
            source, line, clause = _source_anchor(norm, caller.pred,
                                                  clause_index)
            positions = (result.call_positions or {}).get(
                (caller.pred, clause_index), ())
            body_pos = (positions[callsite]
                        if callsite < len(positions) else None)
            goal = None
            if clause is not None and body_pos is not None \
                    and body_pos < len(clause.body):
                goal = repr(clause.body[body_pos])
            blame.steps.append(SliceStep(
                "call-site", caller.pred, caller_id, clause_index,
                body_pos=body_pos, goal=goal, source=source, line=line,
                depth=depth + 1))
            if caller_id not in seen:
                seen.add(caller_id)
                frontier.append((caller_id, depth + 1))
    return blame


def blame_slices(result, norm: Optional[NormProgram],
                 report: CheckReport) -> List[BlameSlice]:
    """One :class:`BlameSlice` per offending entry of every violated
    verdict in ``report``.

    Requires the analysis to have retained its dependency graph —
    raises ``ValueError`` otherwise (run with
    ``AnalysisConfig(keep_deps=True)``)."""
    if result.callsite_deps is None:
        raise ValueError(
            "analysis did not retain dependency edges; re-run with "
            "AnalysisConfig(keep_deps=True) to enable blame slicing")
    slices: List[BlameSlice] = []
    for verdict in report.verdicts:
        if verdict.status != VIOLATED:
            continue
        for entry_id in verdict.offending_entries:
            slices.append(_slice_for_entry(result, norm, verdict,
                                           entry_id))
    return slices
