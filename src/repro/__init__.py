"""repro — Type Analysis of Prolog Using Type Graphs.

A complete reproduction of Van Hentenryck, Cortesi & Le Charlier's
PLDI'94 system ``GAIA(Pat(Type))``:

* :mod:`repro.prolog` — Prolog front end (tokenizer, parser,
  normalizer) and a reference SLD interpreter;
* :mod:`repro.typegraph` — the type graph domain: deterministic
  regular tree grammars, the graph view, inclusion / union /
  intersection, and the paper's widening operator;
* :mod:`repro.domains` — the generic pattern domain ``Pat(R)`` with
  the Type leaf domain and the principal-functor baseline;
* :mod:`repro.fixpoint` — the polyvariant worklist engine and
  abstract builtins;
* :mod:`repro.analysis` — the high-level API, Table 1–5 metrics, and
  tag extraction;
* :mod:`repro.benchprogs` — the benchmark suite of §9;
* :mod:`repro.service` — the serving layer: canonical serialization,
  a content-addressed result cache, a batch/parallel driver, and
  SCC-scoped incremental re-analysis.

Quickstart::

    from repro import analyze
    analysis = analyze('''
        app([], X, X).
        app([F|T], S, [F|R]) :- app(T, S, R).
    ''', ("app", 3))
    print(analysis.grammar_text())
"""

from .analysis.analyzer import TypeAnalysis, analyze, make_input_pattern
from .fixpoint.engine import AnalysisConfig
from .prolog.program import Program, parse_program
from .prolog.parser import parse_term
from .typegraph.display import grammar_to_text, parse_rules
from .typegraph.grammar import Grammar

__version__ = "1.1.0"

__all__ = [
    "TypeAnalysis", "analyze", "make_input_pattern", "AnalysisConfig",
    "Program", "parse_program", "parse_term",
    "Grammar", "grammar_to_text", "parse_rules",
    "__version__",
]
