"""Sharded analysis cluster: ``repro router``, the fleet front door.

PR 5's ``repro serve`` keeps intern tables, arenas, and the opcache
warm — inside exactly one process.  The router scales that *warm
state* horizontally: it consistent-hashes every workload's
``CacheKey.program_hash`` across N backend ``repro serve`` shards, so
each shard stays hot for *its* slice of the program space (memory
result cache, intern tables, arena symbols, opcache), while a shared
content-addressed disk :class:`~repro.service.cache.ResultCache`
(every shard started with the same ``--cache-dir``) acts as the L2
that makes any result computed on one shard a disk hit on every
other — cross-shard promotion falls out of the cache's atomic-rename
object store rather than a bespoke replication protocol.

Topology::

    clients ──nd-JSON──▶ router ──nd-JSON──▶ shard 1 (repro serve)
                           │     (pooled)  ▶ shard 2      │
                           │               ▶ shard N      ▼
                           └── stats fan-out     shared --cache-dir (L2)

The router speaks the same :mod:`repro.service.transport` protocol on
both sides, so ``ServeClient`` works unchanged against it and shard
responses are forwarded as raw bytes (no re-serialization on the hot
path).  Service guarantees on top of routing:

* **connection pools** — at most ``pool_size`` in-flight requests per
  shard over persistent connections; excess requests queue fairly in
  the router;
* **health checks** — a background prober marks shards down after
  ``down_after`` consecutive failures and back up on recovery; mark
  up/down never mutates the hash ring, so rehash on membership change
  is deterministic: keys of an unavailable shard spill to the next
  replica on the ring and return home when it does;
* **failover** — idempotent ops (``analyze``/``batch``/reads) retry
  on the next replica with exponential backoff, bounded by
  ``retries`` extra passes; non-idempotent ops never retry;
* **graceful drain** — ``drain-shard`` takes a shard out of rotation
  while its in-flight requests complete; ``shutdown`` drains the
  router itself (and any shards it spawned with ``--spawn``);
* **supervision** — the health loop detects spawned-shard deaths
  (``Popen.poll``), prints the tail of the shard's stderr log, and
  respawns the original argv on the same port with exponential
  backoff; a crash-loop breaker stops restarting after K deaths
  inside a sliding window.  Un-spawned shards keep the skip-in-ring
  behavior — the router cannot resurrect a process it does not own;
* **live membership** — ``add-shard`` joins a running shard to the
  ring after a health probe passes (only its consistent-hash slice
  moves), ``remove-shard`` drains then deletes; both are journaled;
* **replicated writes** — a fresh analyze result computed on its home
  shard is asynchronously ``seed``-ed into the next ``replicate - 1``
  replicas' *memory* tiers, so failover lands on warm memory instead
  of disk-L2 (the shared store already covers durability);
* **durable membership** — every membership/supervision event is
  journaled to an append-only JSON-lines file (``--journal``); on
  startup the journal replays its ``add-shard``/``remove-shard`` ops,
  so externally attached shards survive a router restart;
* **router redundancy** — a standby started with ``--sync-from
  HOST:PORT`` polls the primary's ``sync-membership`` op and mirrors
  its ring (its own health loop still decides up/down); it refuses
  membership writes while the primary answers and promotes itself
  once the primary has been unreachable for ``down_after``
  consecutive sync polls.  Clients reach the pair through
  ``ServeClient(endpoints=[...])`` failover;
* **anti-entropy replica repair** — a periodic pass compares each
  live shard's memory-tier digests (the cheap ``digest`` op) across
  the replication window and re-seeds entries lost to restarts,
  evictions, or the seed-vs-invalidate race, with read-repair when a
  failover has to recompute a result the dedupe LRU thought was
  already replicated.  An entry the home shard no longer holds is
  only re-spread when the shared disk store still has it — a missed
  ``invalidate`` is never resurrected;
* **fleet observability** — ``stats`` fans out to every live shard
  and merges hit rates, queue depths, and latency summaries next to
  the router's own end-to-end percentiles.

Cross-host deployments are described once in a ``fleet.json`` spec
(``--fleet``): the routers, the shard addresses, the replicate factor,
and the shared cache directory.  Remote shards the router did not
spawn keep **skip-only supervision** semantics — a dead remote shard
is marked down and skipped in the ring, never restarted (the router
cannot resurrect a process it does not own); it returns to rotation
when its operator brings it back.
"""

from __future__ import annotations

import argparse
import asyncio
import hashlib
import json
import os
import random
import sys
import time
from bisect import bisect_right
from collections import OrderedDict, deque
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple, Union

from .cache import ResultCache
from .serialize import program_hash
from .server import RequestError, ServerStats
from .transport import (LINE_LIMIT, AsyncLineConnection, ConnectError,
                        LineServer, ProtocolError, decode_message,
                        encode_message, error_envelope, ok_envelope)

__all__ = ["HashRing", "ShardState", "ClusterRouter", "MembershipJournal",
           "DEFAULT_ROUTER_PORT", "load_fleet", "router_main"]

DEFAULT_ROUTER_PORT = 7870

#: Ops safe to replay on another shard after a transport failure (a
#: pure function of the cache key, or read-only).
_IDEMPOTENT_OPS = frozenset({"analyze", "check", "slice", "batch",
                             "ping", "stats", "cache-info"})

#: Transport failures that trigger failover (a shard that *answered*
#: — even with an error envelope — does not).
_FORWARD_ERRORS = (ConnectionError, ConnectError, OSError,
                   asyncio.IncompleteReadError)


# -- consistent hashing ------------------------------------------------------

def _ring_hash(text: str) -> int:
    """Stable 64-bit ring coordinate (never Python's salted hash)."""
    return int.from_bytes(
        hashlib.sha256(text.encode("utf-8")).digest()[:8], "big")


class HashRing:
    """Consistent hash ring with virtual nodes.

    Each node contributes ``vnodes`` points; a key is owned by the
    first point clockwise of its own hash.  Membership changes move
    only the keys of the node that joined or left (~1/N of the space),
    which is the property that keeps the other shards' warm caches
    warm through a membership change — the tests pin it.
    """

    def __init__(self, nodes: Iterable[str] = (),
                 vnodes: int = 64) -> None:
        if vnodes < 1:
            raise ValueError("vnodes must be >= 1")
        self.vnodes = vnodes
        self._nodes: List[str] = []
        self._points: List[int] = []
        self._owners: List[str] = []
        self._preference_memo: "OrderedDict[str, Tuple[str, ...]]" = \
            OrderedDict()
        for node in nodes:
            self.add(node)

    @property
    def nodes(self) -> Tuple[str, ...]:
        return tuple(self._nodes)

    def _rebuild(self) -> None:
        points = []
        for node in self._nodes:
            for i in range(self.vnodes):
                points.append((_ring_hash("%s#%d" % (node, i)), node))
        points.sort()
        self._points = [p for p, _ in points]
        self._owners = [n for _, n in points]
        self._preference_memo.clear()

    def add(self, node: str) -> None:
        if node in self._nodes:
            raise ValueError("node %r already on the ring" % node)
        self._nodes.append(node)
        self._rebuild()

    def remove(self, node: str) -> None:
        self._nodes.remove(node)
        self._rebuild()

    def preference(self, key: str) -> Tuple[str, ...]:
        """Every node, in deterministic failover order for ``key``:
        the owner first, then each distinct node walking clockwise."""
        memo = self._preference_memo
        hit = memo.get(key)
        if hit is not None:
            memo.move_to_end(key)
            return hit
        if not self._nodes:
            return ()
        start = bisect_right(self._points, _ring_hash(key))
        order: List[str] = []
        seen = set()
        total = len(self._points)
        for step in range(total):
            node = self._owners[(start + step) % total]
            if node not in seen:
                seen.add(node)
                order.append(node)
                if len(order) == len(self._nodes):
                    break
        result = tuple(order)
        memo[key] = result
        if len(memo) > 8192:
            memo.popitem(last=False)
        return result

    def node_for(self, key: str) -> str:
        return self.preference(key)[0]


# -- shard handle ------------------------------------------------------------

class ShardState:
    """One backend shard: address, health, and a bounded pool of
    persistent connections."""

    def __init__(self, shard_id: str, host: str, port: int,
                 pool_size: int = 4,
                 connect_timeout: float = 5.0) -> None:
        if pool_size < 1:
            raise ValueError("pool_size must be >= 1")
        self.id = shard_id
        self.host = host
        self.port = port
        self.pool_size = pool_size
        self.connect_timeout = connect_timeout
        self.status = "up"          # "up" | "down" | "draining"
        self.inflight = 0
        self.forwarded = 0
        self.failures = 0
        self.consecutive_failures = 0
        self.process = None         # Popen when the router spawned it
        # -- supervision (spawned shards only) --
        self.spawn_argv: Optional[List[str]] = None  # respawn recipe
        self.log_path: Optional[str] = None          # stderr capture
        self.restarts = 0
        self.restart_failures = 0
        self.recent_deaths: "deque[float]" = deque(maxlen=32)
        self.next_restart_at: Optional[float] = None  # monotonic
        self.death_handled = False   # this death already noted?
        self.breaker_tripped = False
        self.last_probe_at: Optional[float] = None    # wall clock
        self._idle: "deque[AsyncLineConnection]" = deque()
        self._slots: Optional[asyncio.Semaphore] = None

    @property
    def available(self) -> bool:
        return self.status == "up"

    def _semaphore(self) -> asyncio.Semaphore:
        if self._slots is None:
            self._slots = asyncio.Semaphore(self.pool_size)
        return self._slots

    async def request_raw(self, line: bytes,
                          timeout: Optional[float] = None) -> bytes:
        """One pooled round trip of pre-framed bytes.  Transport
        failures close the connection and propagate; the caller does
        failover accounting."""
        async with self._semaphore():
            self.inflight += 1
            conn = None
            try:
                conn = self._idle.pop() if self._idle else None
                if conn is None:
                    conn = await asyncio.wait_for(
                        AsyncLineConnection.open(self.host, self.port,
                                                 limit=LINE_LIMIT),
                        self.connect_timeout)
                response = await asyncio.wait_for(
                    conn.request_raw(line), timeout)
                self._idle.append(conn)
                self.forwarded += 1
                return response
            except BaseException:
                if conn is not None:
                    conn.close()
                raise
            finally:
                self.inflight -= 1

    async def request(self, message: dict,
                      timeout: Optional[float] = None) -> dict:
        return decode_message(await self.request_raw(
            encode_message(message), timeout))

    def note_failure(self, down_after: int) -> bool:
        """Record a transport failure; returns True when this crossed
        the mark-down threshold."""
        self.failures += 1
        self.consecutive_failures += 1
        if (self.status == "up"
                and self.consecutive_failures >= down_after):
            self.mark_down()
            return True
        return False

    def note_success(self) -> None:
        self.consecutive_failures = 0

    def mark_down(self) -> None:
        if self.status != "draining":
            self.status = "down"
        self.close_idle()

    def mark_up(self) -> None:
        if self.status == "down":
            self.status = "up"
        self.consecutive_failures = 0

    def close_idle(self) -> None:
        while self._idle:
            self._idle.pop().close()

    def info(self) -> dict:
        return {
            "status": self.status,
            "inflight": self.inflight,
            "forwarded": self.forwarded,
            "failures": self.failures,
            "consecutive_failures": self.consecutive_failures,
            "idle_connections": len(self._idle),
            "pool_size": self.pool_size,
            "spawned": self.process is not None,
            "supervised": self.spawn_argv is not None,
            "restarts": self.restarts,
            "restart_failures": self.restart_failures,
            "recent_deaths": len(self.recent_deaths),
            "breaker_tripped": self.breaker_tripped,
            "restart_pending": self.next_restart_at is not None,
            "last_probe_at": self.last_probe_at,
            "log_path": self.log_path,
        }


# -- the router --------------------------------------------------------------

class RouterStats:
    """Router-level counters and an end-to-end latency ring."""

    __slots__ = ("started", "requests", "routed", "local", "retries",
                 "failovers", "errors", "latencies", "restarts",
                 "restart_failures", "breaker_trips", "shards_added",
                 "shards_removed", "replications",
                 "replication_failures", "anti_entropy_passes",
                 "anti_entropy_repairs", "anti_entropy_failures",
                 "read_repairs", "sync_pulls", "sync_failures")

    def __init__(self) -> None:
        self.started = time.time()
        self.requests = 0
        self.routed = 0
        self.local = 0
        self.retries = 0
        self.failovers = 0
        self.errors = 0
        self.latencies: "deque[float]" = deque(maxlen=4096)
        self.restarts = 0
        self.restart_failures = 0
        self.breaker_trips = 0
        self.shards_added = 0
        self.shards_removed = 0
        self.replications = 0
        self.replication_failures = 0
        self.anti_entropy_passes = 0
        self.anti_entropy_repairs = 0
        self.anti_entropy_failures = 0
        self.read_repairs = 0
        self.sync_pulls = 0
        self.sync_failures = 0

    def latency_summary(self) -> dict:
        return ServerStats.latency_summary(self)  # same ring shape


class MembershipJournal:
    """Durable append-only record of membership and supervision events.

    One JSON object per line, ``fsync``-free (a lost tail costs at
    most the most recent events, and replay only re-applies membership
    *ops* anyway).  A torn final line — the process died mid-append —
    is ignored on replay, as is any line that does not parse: the
    journal must never stop a router from starting.

    ``seq`` numbers every appended event monotonically, continuing
    from whatever the file already holds, so a standby comparing
    ``sync-membership`` responses can tell whether the primary's view
    moved.

    The journal grows without bound under churn (every death, restart,
    and breaker trip is an event), but replay only ever needs the
    membership *outcome*.  When the file exceeds
    ``compact_threshold`` bytes at open time the router calls
    :meth:`compact` with its live membership snapshot, which rewrites
    the file to just those entries — ``seq`` keeps counting from the
    old maximum, so standbys never see the sequence move backwards.
    """

    #: Default on-disk size (bytes) above which the router compacts
    #: the journal when it opens it.
    COMPACT_BYTES = 64 * 1024

    def __init__(self, path: str,
                 compact_threshold: int = COMPACT_BYTES) -> None:
        self.path = str(path)
        self.compact_threshold = compact_threshold
        self.compactions = 0
        directory = os.path.dirname(self.path)
        if directory:
            os.makedirs(directory, exist_ok=True)
        #: Entries already on disk when the journal was opened, oldest
        #: first — the router replays membership ops out of these.
        self._torn_tail = False
        self.replayed: List[dict] = self._read()
        self.seq = max([entry.get("seq") or 0
                        for entry in self.replayed] + [0])
        self._handle = None

    def _read(self) -> List[dict]:
        entries: List[dict] = []
        try:
            with open(self.path, "rb") as handle:
                for raw in handle:
                    if not raw.endswith(b"\n"):
                        self._torn_tail = True
                        break  # torn final line: crash mid-append
                    try:
                        entry = json.loads(raw)
                    except ValueError:
                        continue
                    if isinstance(entry, dict):
                        entries.append(entry)
        except OSError:
            return []
        return entries

    def append(self, entry: dict) -> None:
        self.seq += 1
        record = dict(entry, seq=self.seq)
        if self._handle is None:
            self._handle = open(self.path, "ab", buffering=0)
            if self._torn_tail:
                # Terminate the torn fragment so the new event gets
                # its own line instead of being glued to garbage.
                self._handle.write(b"\n")
                self._torn_tail = False
        self._handle.write(
            json.dumps(record, sort_keys=True).encode("utf-8") + b"\n")

    def size(self) -> int:
        """Current on-disk size in bytes (0 when absent)."""
        try:
            return os.path.getsize(self.path)
        except OSError:
            return 0

    def needs_compaction(self) -> bool:
        return (bool(self.compact_threshold)
                and self.size() >= self.compact_threshold)

    def compact(self, snapshot: Sequence[dict]) -> int:
        """Rewrite the journal to ``snapshot`` — the live membership
        as add-shard entries — dropping the event history it encodes.
        Atomic (tempfile + ``os.replace``): a crash mid-compaction
        leaves the old journal intact.  Each snapshot entry is stamped
        with a fresh ``seq`` continuing past the old maximum, so a
        replay of the compacted journal builds the identical ring and
        downstream sequence comparisons stay monotone.  Returns the
        number of entries dropped."""
        self.close()
        dropped = len(self.replayed) - len(snapshot)
        temp_path = self.path + ".compact"
        records = []
        with open(temp_path, "wb") as handle:
            for entry in snapshot:
                self.seq += 1
                record = dict(entry, seq=self.seq)
                records.append(record)
                handle.write(json.dumps(record, sort_keys=True)
                             .encode("utf-8") + b"\n")
        os.replace(temp_path, self.path)
        self._torn_tail = False
        self.replayed = records
        self.compactions += 1
        return dropped

    def close(self) -> None:
        if self._handle is not None:
            self._handle.close()
            self._handle = None


def _parse_shard_address(text: str) -> Tuple[str, int]:
    host, _, port_text = text.rpartition(":")
    if not host or not port_text.isdigit():
        raise ValueError("shard address must be HOST:PORT, got %r"
                         % text)
    return host, int(port_text)


class ClusterRouter:
    """The consistent-hash front door over N ``repro serve`` shards.

    Usable embedded (tests run shards and router in one event loop) or
    through :func:`router_main`.  All public coroutines must run on
    the loop that called :meth:`start`.
    """

    def __init__(self, shards: Sequence[Union[str, Tuple[str, int]]],
                 host: str = "127.0.0.1", port: int = 0,
                 cache_dir: Optional[str] = None,
                 vnodes: int = 64, pool_size: int = 4,
                 retries: int = 2, backoff: float = 0.05,
                 health_interval: float = 1.0, down_after: int = 2,
                 request_timeout: Optional[float] = 300.0,
                 replicate: int = 1,
                 restart_backoff: float = 0.5,
                 restart_backoff_max: float = 30.0,
                 breaker_deaths: int = 5,
                 breaker_window: float = 30.0,
                 faults=None,
                 journal_path: Optional[str] = None,
                 journal_compact_bytes: Optional[int] = None,
                 sync_from: Optional[Union[str, Tuple[str, int]]] = None,
                 anti_entropy_interval: float = 0.0,
                 shard_log_max_bytes: Optional[int] = None) -> None:
        if not shards and sync_from is None and journal_path is None:
            raise ValueError("a router needs at least one shard")
        if replicate < 1:
            raise ValueError("replicate must be >= 1")
        self.host = host
        self.port = port
        self.cache_dir = cache_dir
        self.retries = retries
        self.backoff = backoff
        self.health_interval = health_interval
        self.down_after = down_after
        self.request_timeout = request_timeout
        self.replicate = replicate
        self.restart_backoff = restart_backoff
        self.restart_backoff_max = restart_backoff_max
        self.breaker_deaths = breaker_deaths
        self.breaker_window = breaker_window
        self.faults = faults
        self.anti_entropy_interval = anti_entropy_interval
        self.shard_log_max_bytes = shard_log_max_bytes
        self.sync_from: Optional[Tuple[str, int]] = (
            None if sync_from is None
            else _parse_shard_address(sync_from)
            if isinstance(sync_from, str)
            else (sync_from[0], int(sync_from[1])))
        self.stats = RouterStats()
        self.pool_size = pool_size
        self.shards: Dict[str, ShardState] = {}
        for spec in shards:
            shard_host, shard_port = (
                _parse_shard_address(spec) if isinstance(spec, str)
                else (spec[0], int(spec[1])))
            shard_id = "%s:%d" % (shard_host, shard_port)
            if shard_id in self.shards:
                raise ValueError("duplicate shard %s" % shard_id)
            self.shards[shard_id] = ShardState(shard_id, shard_host,
                                               shard_port, pool_size)
        self.ring = HashRing(self.shards, vnodes=vnodes)
        #: shared L2 handle — observability only; the shards own all
        #: reads/writes of the store.
        self.l2 = (ResultCache(cache_dir) if cache_dir is not None
                   else None)
        self._server: Optional[LineServer] = None
        self._health_task: Optional[asyncio.Task] = None
        self._sync_task: Optional[asyncio.Task] = None
        self._anti_entropy_task: Optional[asyncio.Task] = None
        self._shutdown_event: Optional[asyncio.Event] = None
        self._draining = False
        self._inflight_requests = 0
        #: membership/supervision journal: the last 64 events, newest
        #: last, surfaced by ``router-info``.
        self.membership_log: "deque[dict]" = deque(maxlen=64)
        #: durable journal behind the in-memory log; every event is
        #: written through, and add-shard/remove-shard ops replay on
        #: startup so attached shards survive a router restart.
        self.journal = (MembershipJournal(
            journal_path,
            compact_threshold=(MembershipJournal.COMPACT_BYTES
                               if journal_compact_bytes is None
                               else journal_compact_bytes))
            if journal_path is not None else None)
        self.journal_replayed = 0
        #: standby bookkeeping: a router with ``sync_from`` mirrors
        #: that primary's membership and refuses membership writes
        #: until the primary stops answering sync polls.
        self.primary_reachable = self.sync_from is not None
        self.last_sync_at: Optional[float] = None
        self._sync_misses = 0
        #: jitter source for the health loop — process-local on
        #: purpose, so N routers probing one fleet desynchronize.
        self._jitter = random.Random(os.getpid() ^ int(time.time()))
        #: replication bookkeeping: result digests already seeded (an
        #: LRU — reseeding is harmless, just wasted bytes) and the
        #: in-flight background pushes a drain must wait out.
        self._seeded: "OrderedDict[str, bool]" = OrderedDict()
        self._replication_tasks: set = set()
        #: source text -> program_hash memo (hashing parses the
        #: program; the router pays that once per distinct program).
        self._program_hashes: "OrderedDict[str, str]" = OrderedDict()
        #: benchmark name -> program_hash.
        self._benchmark_hashes: Dict[str, str] = {}
        if self.journal is not None and self.journal.replayed:
            self._replay_membership(self.journal.replayed)
            if self.journal.needs_compaction():
                self._compact_journal()
        if not self.shards and self.sync_from is None:
            raise ValueError(
                "no shards configured and the journal replayed none — "
                "give shards, or --sync-from a primary")

    def _replay_membership(self, entries: Sequence[dict]) -> None:
        """Re-apply the journal's ``add-shard``/``remove-shard`` ops,
        in order.  Only membership *ops* replay: deaths, restarts, and
        breaker trips describe processes a restarted router no longer
        owns, and spawned shards are reconstructed by ``--spawn`` on
        fresh ephemeral ports, not resurrected from history.  A
        replayed shard that is actually gone is simply marked down by
        the first health probe — same skip-in-ring semantics as any
        other remote shard."""
        pool_size = self.pool_size
        for entry in entries:
            event = entry.get("event")
            shard_id = entry.get("shard")
            if not isinstance(shard_id, str):
                continue
            if event in ("add-shard", "sync-add"):
                host = entry.get("host")
                port = entry.get("port")
                if (shard_id in self.shards
                        or not isinstance(host, str)
                        or not isinstance(port, int)):
                    continue
                self.shards[shard_id] = ShardState(shard_id, host, port,
                                                   pool_size)
                self.ring.add(shard_id)
                self.journal_replayed += 1
            elif event in ("remove-shard", "sync-remove"):
                shard = self.shards.pop(shard_id, None)
                if shard is not None:
                    self.ring.remove(shard_id)
                    self.journal_replayed += 1
        if self.journal_replayed:
            print("repro router: journal %s replayed %d membership "
                  "op(s) (%d shard(s) on the ring)"
                  % (self.journal.path, self.journal_replayed,
                     len(self.shards)), file=sys.stderr)

    def _compact_journal(self) -> None:
        """Rewrite an oversized journal down to the live membership:
        one ``add-shard`` entry per shard currently on the ring.
        Replaying the compacted journal reconstructs the identical
        ring — the event history (deaths, restarts, drains) it
        replaces never influenced replay anyway."""
        snapshot = [{"event": "add-shard", "shard": shard_id,
                     "host": shard.host, "port": shard.port,
                     "at": round(time.time(), 3), "compacted": True}
                    for shard_id, shard in sorted(self.shards.items())]
        dropped = self.journal.compact(snapshot)
        print("repro router: journal %s compacted to %d membership "
              "entr%s (%d event(s) dropped)"
              % (self.journal.path, len(snapshot),
                 "y" if len(snapshot) == 1 else "ies", dropped),
              file=sys.stderr)

    # -- lifecycle -----------------------------------------------------------

    async def start(self) -> None:
        self._shutdown_event = asyncio.Event()
        self._server = LineServer(self._serve_line, self.host,
                                  self.port, limit=LINE_LIMIT,
                                  faults=self.faults)
        await self._server.start()
        self.port = self._server.port
        self._health_task = asyncio.ensure_future(self._health_loop())
        if self.sync_from is not None:
            self._sync_task = asyncio.ensure_future(self._sync_loop())
        if self.anti_entropy_interval and self.replicate > 1:
            self._anti_entropy_task = asyncio.ensure_future(
                self._anti_entropy_loop())

    def _journal(self, event: str, shard_id: str, **detail) -> None:
        entry = dict(detail, event=event, shard=shard_id,
                     at=round(time.time(), 3))
        self.membership_log.append(entry)
        if self.journal is not None:
            try:
                self.journal.append(entry)
            except OSError as error:
                # Never let a full/broken disk take down routing; the
                # in-memory log still has the event.
                print("repro router: journal write failed: %s" % error,
                      file=sys.stderr)

    async def serve_until_shutdown(self) -> None:
        assert self._shutdown_event is not None
        await self._shutdown_event.wait()
        await self.drain_and_close()

    def trigger_shutdown(self) -> None:
        self._draining = True
        if self._shutdown_event is not None:
            self._shutdown_event.set()

    async def drain_and_close(self, shutdown_spawned: bool = True) -> None:
        """Stop accepting, let in-flight requests finish, close shard
        pools (and shut down shards this router spawned)."""
        self._draining = True
        if self._server is not None:
            self._server.close()
        deadline = time.monotonic() + (self.request_timeout or 60.0)
        while ((self._inflight_requests > 0
                or self._replication_tasks)
               and time.monotonic() < deadline):
            await asyncio.sleep(0.02)
        for task in (self._health_task, self._sync_task,
                     self._anti_entropy_task):
            if task is None:
                continue
            task.cancel()
            try:
                await task
            except asyncio.CancelledError:
                pass
        if shutdown_spawned:
            await self._shutdown_spawned_shards()
        for shard in self.shards.values():
            shard.close_idle()
        if self._server is not None:
            self._server.hang_up()
            await self._server.wait_closed()
        if self.journal is not None:
            self.journal.close()

    async def _shutdown_spawned_shards(self) -> None:
        loop = asyncio.get_running_loop()
        for shard in list(self.shards.values()):
            if shard.process is None:
                continue
            try:
                await shard.request({"id": None, "op": "shutdown"},
                                    timeout=10.0)
            except Exception:
                pass
            try:
                await asyncio.wait_for(
                    loop.run_in_executor(None, shard.process.wait), 30.0)
            except Exception:
                shard.process.terminate()

    # -- health & supervision ------------------------------------------------

    async def _health_loop(self) -> None:
        while True:
            # Jittered cadence (±50%): N routers probing one fleet —
            # or one router restarted in lockstep with its shards —
            # must not synchronize their probe bursts.
            await asyncio.sleep(self.health_interval
                                * self._jitter.uniform(0.5, 1.5))
            await asyncio.gather(*(self._check_shard(shard)
                                   for shard in list(self.shards.values())),
                                 return_exceptions=True)

    async def _check_shard(self, shard: ShardState) -> None:
        """One probe over a dedicated connection — never through the
        pool, so a shard busy with long analyses still answers.
        Spawned shards get supervision on top: a dead process is
        detected here, logged, and queued for restart."""
        if shard.status == "draining":
            return
        shard.last_probe_at = time.time()
        if shard.process is not None and shard.process.poll() is not None:
            if not shard.death_handled:
                self._note_shard_death(
                    shard, "exited with code %s" % shard.process.poll())
            if (shard.next_restart_at is not None
                    and time.monotonic() >= shard.next_restart_at):
                await self._restart_shard(shard)
            return
        probe_timeout = max(1.0, min(5.0, self.health_interval * 2))
        conn = None
        try:
            conn = await asyncio.wait_for(
                AsyncLineConnection.open(shard.host, shard.port),
                probe_timeout)
            response = await asyncio.wait_for(
                conn.request({"id": None, "op": "ping"}), probe_timeout)
            healthy = bool(response.get("ok"))
        except (asyncio.TimeoutError, ProtocolError) + _FORWARD_ERRORS:
            healthy = False
        finally:
            if conn is not None:
                conn.close()
        if healthy:
            if shard.status == "down":
                shard.mark_up()
                print("repro router: shard %s back up" % shard.id,
                      file=sys.stderr)
            else:
                shard.note_success()
        else:
            if shard.note_failure(self.down_after):
                print("repro router: shard %s marked down" % shard.id,
                      file=sys.stderr)

    def _deaths_in_window(self, shard: ShardState) -> int:
        cutoff = time.monotonic() - self.breaker_window
        return sum(1 for at in shard.recent_deaths if at >= cutoff)

    def _note_shard_death(self, shard: ShardState, what: str) -> None:
        """Record one death of a supervised shard: mark it down, dump
        crash evidence, and either schedule a backed-off restart or
        trip the crash-loop breaker."""
        shard.recent_deaths.append(time.monotonic())
        shard.death_handled = True
        shard.mark_down()
        print("repro router: shard %s died (%s)" % (shard.id, what),
              file=sys.stderr)
        self._print_shard_log_tail(shard)
        deaths = self._deaths_in_window(shard)
        if deaths >= self.breaker_deaths:
            shard.breaker_tripped = True
            shard.next_restart_at = None
            self.stats.breaker_trips += 1
            self._journal("breaker-tripped", shard.id, deaths=deaths,
                          window=self.breaker_window)
            print("repro router: shard %s crash-looping (%d deaths in "
                  "%.0fs) — breaker tripped, no further restarts "
                  "(remove-shard + add-shard to reset)"
                  % (shard.id, deaths, self.breaker_window),
                  file=sys.stderr)
            return
        if shard.spawn_argv is None:
            # Not ours to restart: keep today's skip-in-ring behavior.
            self._journal("shard-death", shard.id, supervised=False)
            return
        delay = min(self.restart_backoff_max,
                    self.restart_backoff * (2 ** max(0, deaths - 1)))
        shard.next_restart_at = time.monotonic() + delay
        self._journal("shard-death", shard.id, supervised=True,
                      restart_in=round(delay, 3), deaths_in_window=deaths)
        print("repro router: restarting shard %s in %.2fs (death %d "
              "in window)" % (shard.id, delay, deaths), file=sys.stderr)

    def _print_shard_log_tail(self, shard: ShardState,
                              lines: int = 20) -> None:
        if not shard.log_path:
            return
        try:
            with open(shard.log_path, "rb") as handle:
                tail = handle.readlines()[-lines:]
        except OSError:
            return
        if not tail:
            return
        print("repro router: last %d line(s) of %s:"
              % (len(tail), shard.log_path), file=sys.stderr)
        for raw in tail:
            print("  | %s" % raw.decode("utf-8", "replace").rstrip(),
                  file=sys.stderr)

    def _spawn_shard_process(self, shard: ShardState):
        """Respawn a supervised shard's original argv (same port).
        Blocking — runs in an executor; split out so tests can
        monkeypatch the spawn itself."""
        from .client import _spawn_ready
        process, _, port = _spawn_ready(
            list(shard.spawn_argv), ready_timeout=60.0,
            what="repro serve (restart of %s)" % shard.id,
            stderr_path=shard.log_path,
            log_max_bytes=self.shard_log_max_bytes)
        if port != shard.port:
            process.terminate()
            raise RuntimeError(
                "restarted shard came up on port %d, expected %d"
                % (port, shard.port))
        return process

    async def _restart_shard(self, shard: ShardState) -> None:
        shard.next_restart_at = None  # claimed: no concurrent attempt
        loop = asyncio.get_running_loop()
        try:
            process = await loop.run_in_executor(
                None, self._spawn_shard_process, shard)
        except Exception as error:
            shard.restart_failures += 1
            self.stats.restart_failures += 1
            # A failed restart counts as a death: it feeds the breaker
            # and pushes the next attempt further out.
            self._note_shard_death(shard, "restart failed: %s" % error)
            return
        shard.process = process
        shard.restarts += 1
        self.stats.restarts += 1
        shard.death_handled = False
        shard.mark_up()
        self._journal("shard-restarted", shard.id, pid=process.pid,
                      restarts=shard.restarts)
        print("repro router: shard %s restarted (pid %d, restart #%d)"
              % (shard.id, process.pid, shard.restarts), file=sys.stderr)

    # -- standby membership sync ---------------------------------------------

    async def _sync_loop(self) -> None:
        """Standby mode: poll the primary's ``sync-membership`` op on
        the health cadence and mirror its ring.  ``down_after``
        consecutive failed polls promote this router — it keeps the
        last-synced membership and starts accepting membership writes
        itself; if the primary later answers again, it demotes back."""
        host, port = self.sync_from
        while True:
            await asyncio.sleep(self.health_interval
                                * self._jitter.uniform(0.5, 1.5))
            membership = None
            conn = None
            try:
                conn = await asyncio.wait_for(
                    AsyncLineConnection.open(host, port), 5.0)
                response = await asyncio.wait_for(
                    conn.request({"id": None, "op": "sync-membership"}),
                    10.0)
                if response.get("ok"):
                    membership = response.get("result") or {}
            except (asyncio.TimeoutError, ProtocolError,
                    *_FORWARD_ERRORS):
                pass
            finally:
                if conn is not None:
                    conn.close()
            if membership is None:
                self.stats.sync_failures += 1
                self._sync_misses += 1
                if (self.primary_reachable
                        and self._sync_misses >= self.down_after):
                    self.primary_reachable = False
                    self._journal("standby-promoted",
                                  "%s:%d" % (host, port),
                                  misses=self._sync_misses)
                    print("repro router: primary %s:%d unreachable "
                          "after %d sync poll(s) — promoted; keeping "
                          "last-known membership and accepting "
                          "membership ops"
                          % (host, port, self._sync_misses),
                          file=sys.stderr)
                continue
            self._sync_misses = 0
            if not self.primary_reachable:
                self.primary_reachable = True
                self._journal("standby-demoted", "%s:%d" % (host, port))
                print("repro router: primary %s:%d back — standby "
                      "demoted, membership ops refused here again"
                      % (host, port), file=sys.stderr)
            self.stats.sync_pulls += 1
            self.last_sync_at = time.time()
            self._apply_membership(membership)

    def _apply_membership(self, membership: dict) -> None:
        """Reconcile this router's ring with the primary's view.
        Shards this router spawned are never dropped (their lifecycle
        is ours); remote ones follow the primary exactly.  Up/down is
        *not* mirrored — the standby's own health loop probes and
        decides — but ``draining`` is, so both routers route around a
        drain the operator started on either of them."""
        listed: Dict[str, dict] = {}
        for spec in membership.get("shards") or ():
            if (isinstance(spec, dict) and isinstance(spec.get("id"), str)
                    and isinstance(spec.get("host"), str)
                    and isinstance(spec.get("port"), int)):
                listed[spec["id"]] = spec
        pool_size = self.pool_size
        for shard_id, spec in listed.items():
            shard = self.shards.get(shard_id)
            if shard is None:
                shard = ShardState(shard_id, spec["host"], spec["port"],
                                   pool_size)
                self.shards[shard_id] = shard
                self.ring.add(shard_id)
                self._journal("sync-add", shard_id, host=spec["host"],
                              port=spec["port"])
                print("repro router: synced shard %s from primary "
                      "(%d shards)" % (shard_id, len(self.shards)),
                      file=sys.stderr)
            if spec.get("status") == "draining":
                if shard.status == "up":
                    shard.status = "draining"
            elif shard.status == "draining":
                shard.status = "up"
        for shard_id in list(self.shards):
            if shard_id in listed:
                continue
            shard = self.shards[shard_id]
            if shard.process is not None:
                continue
            shard.close_idle()
            self.ring.remove(shard_id)
            del self.shards[shard_id]
            self._journal("sync-remove", shard_id)
            print("repro router: synced removal of shard %s "
                  "(%d shards)" % (shard_id, len(self.shards)),
                  file=sys.stderr)

    def _membership_guard(self) -> None:
        """Membership writes go to the primary while it answers — two
        routers mutating one fleet would fork the membership history.
        A promoted standby (primary unreachable) accepts them."""
        if self.sync_from is not None and self.primary_reachable:
            raise RequestError(
                "this router is a standby syncing membership from "
                "%s:%d — apply membership changes there"
                % self.sync_from, "standby")

    # -- anti-entropy replica repair -----------------------------------------

    async def _anti_entropy_loop(self) -> None:
        while True:
            await asyncio.sleep(self.anti_entropy_interval
                                * self._jitter.uniform(0.75, 1.25))
            try:
                await self._anti_entropy_pass()
            except asyncio.CancelledError:
                raise
            except Exception as error:
                self.stats.anti_entropy_failures += 1
                print("repro router: anti-entropy pass failed: %s"
                      % error, file=sys.stderr)

    async def _shard_digests(self, shard: ShardState
                             ) -> Tuple[str, Optional[list]]:
        try:
            envelope = await shard.request({"op": "digest"},
                                           timeout=10.0)
        except (asyncio.TimeoutError, ProtocolError, *_FORWARD_ERRORS):
            return shard.id, None
        if not envelope.get("ok"):
            return shard.id, None
        return shard.id, envelope["result"].get("entries") or []

    def _l2_has(self, program: str, digest: str) -> Optional[bool]:
        """Does the shared disk store still hold this entry?  ``None``
        when there is no shared store to ask (memory-only fleet)."""
        if self.l2 is None:
            return None
        path = os.path.join(self.l2.cache_dir, "objects", program,
                            digest + ".json")
        return os.path.exists(path)

    async def _anti_entropy_pass(self) -> dict:
        """One replica-repair sweep: collect every live shard's
        memory-tier digests (cheap — no payloads), compute each
        entry's replication window on the ring, and re-seed window
        members that lack a copy some other shard still holds.

        This is what heals the two divergence modes replication alone
        leaves behind: a restarted shard that lost its memory tier,
        and the seed-vs-invalidate race (``invalidate`` drops every
        copy; re-analysis on the home reproduces the same
        content-addressed digest, which the ``_seeded`` dedupe LRU
        then refuses to push again).  One deliberate asymmetry: when
        the *home* shard no longer holds an entry, it is re-spread
        only if the shared disk store still has it — an entry that was
        invalidated everywhere but survives in one straggler's memory
        must not be resurrected.  Repairs the LRU later re-evicts are
        wasted bytes, not wrongness.
        """
        live = [shard for shard in self.shards.values()
                if shard.status == "up"]
        inventories = await asyncio.gather(
            *(self._shard_digests(shard) for shard in live))
        holders: Dict[str, Set[str]] = {}
        programs: Dict[str, str] = {}
        unreachable = 0
        for shard_id, entries in inventories:
            if entries is None:
                unreachable += 1
                continue
            for entry in entries:
                digest = entry.get("digest")
                program = entry.get("program")
                if not digest or not program:
                    continue
                holders.setdefault(digest, set()).add(shard_id)
                programs[digest] = program
        repairs = failures = skipped_invalidated = 0
        for digest, holding in holders.items():
            preference = self.ring.preference(programs[digest])
            window = []
            for node in preference:
                shard = self.shards.get(node)
                if shard is not None and shard.status == "up":
                    window.append(node)
                    if len(window) == self.replicate:
                        break
            missing = [node for node in window if node not in holding]
            if not missing:
                continue
            if window and window[0] not in holding:
                # The home itself lacks it: restart/eviction (disk
                # still has it — repair) or a missed invalidate (disk
                # record is gone — let the straggler copy die by LRU).
                if self._l2_has(programs[digest], digest) is False:
                    skipped_invalidated += 1
                    continue
            source = next((node for node in preference
                           if node in holding), None)
            if source is None:
                continue
            outcome = await self._repair_entry(source, digest, missing)
            repairs += outcome[0]
            failures += outcome[1]
        self.stats.anti_entropy_passes += 1
        self.stats.anti_entropy_repairs += repairs
        self.stats.anti_entropy_failures += failures
        return {"entries": len(holders), "shards": len(live),
                "shards_unreachable": unreachable, "repairs": repairs,
                "failures": failures,
                "skipped_invalidated": skipped_invalidated}

    async def _repair_entry(self, source: str, digest: str,
                            missing: Sequence[str]) -> Tuple[int, int]:
        """Fetch one entry (key + payload) from ``source`` and seed it
        into every shard in ``missing``; returns (repairs, failures)."""
        source_shard = self.shards.get(source)
        if source_shard is None:
            return 0, 0
        try:
            envelope = await source_shard.request(
                {"op": "fetch", "digest": digest}, timeout=30.0)
        except (asyncio.TimeoutError, ProtocolError, *_FORWARD_ERRORS):
            return 0, 1
        if not envelope.get("ok"):
            # Raced an eviction/invalidate between digest and fetch:
            # nothing to repair from, not a failure.
            return 0, 0 if envelope.get("code") == "not-found" else 1
        result = envelope["result"]
        seed_line = encode_message({"id": None, "op": "seed",
                                    "key": result.get("key"),
                                    "payload": result.get("payload")})
        repairs = failures = 0
        for node in missing:
            shard = self.shards.get(node)
            if shard is None or shard.status != "up":
                continue
            try:
                seeded = decode_message(
                    await shard.request_raw(seed_line, 30.0))
            except (asyncio.TimeoutError, ProtocolError,
                    *_FORWARD_ERRORS):
                failures += 1
                continue
            if seeded.get("ok"):
                repairs += 1
            else:
                failures += 1
        return repairs, failures

    # -- dispatch ------------------------------------------------------------

    async def _serve_line(self, line: bytes):
        start = time.perf_counter()
        self.stats.requests += 1
        self._inflight_requests += 1
        request_id = None
        try:
            try:
                request = decode_message(line)
            except ProtocolError as error:
                raise RequestError(str(error))
            request_id = request.get("id")
            op = request.get("op")
            local = self._LOCAL_OPS.get(op)
            if local is not None:
                self.stats.local += 1
                result = await local(self, request)
                response = ok_envelope(request_id, result)
            elif op in ("analyze", "check", "slice"):
                response = await self._forward_line(line, request)
            elif op == "batch":
                self.stats.routed += 1
                response = ok_envelope(
                    request_id, await self._op_batch(request))
            elif op == "invalidate":
                self.stats.routed += 1
                response = ok_envelope(
                    request_id, await self._broadcast_invalidate(request))
            else:
                raise RequestError(
                    "unknown op %r (router ops: %s)"
                    % (op, ", ".join(sorted(
                        set(self._LOCAL_OPS)
                        | {"analyze", "check", "slice", "batch",
                           "invalidate"}))))
            return response
        except RequestError as error:
            if error.code not in ("overloaded", "timeout"):
                self.stats.errors += 1
            return error_envelope(request_id, str(error), error.code)
        except Exception as error:
            self.stats.errors += 1
            return error_envelope(request_id,
                                  "%s: %s" % (type(error).__name__, error),
                                  "router-error")
        finally:
            self._inflight_requests -= 1
            self.stats.latencies.append(time.perf_counter() - start)

    # -- routing -------------------------------------------------------------

    def _routing_hash(self, request: dict) -> str:
        """``CacheKey.program_hash`` of the request's program — the
        ring key that keeps one program's workloads on one shard."""
        benchmark = request.get("benchmark")
        if benchmark is not None:
            name = str(benchmark)
            hit = self._benchmark_hashes.get(name)
            if hit is None:
                from ..benchprogs import benchmark as load_benchmark
                try:
                    bp = load_benchmark(name)
                except KeyError:
                    raise RequestError("unknown benchmark %r" % benchmark)
                hit = self._source_hash(bp.source)
                self._benchmark_hashes[name] = hit
            return hit
        source = request.get("source")
        if not isinstance(source, str):
            raise RequestError("request needs 'source' (a string) "
                               "or 'benchmark'")
        return self._source_hash(source)

    def _source_hash(self, source: str) -> str:
        memo = self._program_hashes
        hit = memo.get(source)
        if hit is None:
            hit = program_hash(source)
            memo[source] = hit
            if len(memo) > 4096:
                memo.popitem(last=False)
        else:
            memo.move_to_end(source)
        return hit

    def _forward_timeout(self, request: dict) -> Optional[float]:
        """The shard enforces the request timeout; the router waits a
        little longer so the shard's own ``timeout`` error envelope
        gets through instead of being clipped mid-flight."""
        requested = request.get("timeout")
        try:
            requested = None if requested is None else float(requested)
        except (TypeError, ValueError):
            requested = None
        effective = self.request_timeout
        if requested is not None:
            effective = (requested if effective is None
                         else min(requested, effective))
        if effective is None:
            return None
        return effective * 1.1 + 5.0

    async def _forward_line(self, line: bytes, request: dict,
                            preference: Optional[Tuple[str, ...]] = None
                            ) -> bytes:
        """Route one pre-framed request to its shard, failing over to
        the next replica on transport errors (idempotent ops only).
        The shard's response bytes pass through verbatim.  ``_op_batch``
        passes the group's ``preference`` explicitly (its sub-requests
        carry no top-level program to hash)."""
        self.stats.routed += 1
        if self._draining:
            raise RequestError("router is draining", "shutting-down")
        if preference is None:
            preference = self.ring.preference(self._routing_hash(request))
        idempotent = request.get("op") in _IDEMPOTENT_OPS
        passes = (self.retries + 1) if idempotent else 1
        timeout = self._forward_timeout(request)
        delay = self.backoff
        last_error: Optional[Exception] = None
        attempts = 0
        for attempt in range(passes):
            if attempt:
                self.stats.retries += 1
                await asyncio.sleep(delay)
                delay = min(delay * 2, 1.0)
            for node in preference:
                # .get(): remove-shard may delete a node while this
                # request walks a preference list computed before it.
                shard = self.shards.get(node)
                if shard is None or not shard.available:
                    continue
                attempts += 1
                try:
                    response = await shard.request_raw(line, timeout)
                except asyncio.TimeoutError:
                    # The shard is still computing; replaying a
                    # possibly-heavy analysis elsewhere would double
                    # the work — surface the timeout instead.
                    raise RequestError(
                        "shard %s did not answer within %.1fs"
                        % (node, timeout), "timeout")
                except _FORWARD_ERRORS as error:
                    last_error = error
                    shard.note_failure(self.down_after)
                    if not idempotent:
                        raise RequestError(
                            "shard %s failed mid-request (%s); op %r "
                            "is not retried" % (node, error,
                                                request.get("op")),
                            "shard-unavailable")
                    continue
                shard.note_success()
                failed_over = node != preference[0]
                if failed_over:
                    self.stats.failovers += 1
                if (self.replicate > 1 and len(preference) > 1
                        and request.get("op") == "analyze"):
                    self._maybe_replicate(node, preference, request,
                                          response,
                                          read_repair=failed_over)
                return response
        if attempts == 0:
            raise RequestError(
                "no shard available for this key (%d configured, all "
                "down or draining)" % len(self.shards), "no-shards")
        raise RequestError(
            "all replicas failed after %d attempt(s): %s"
            % (attempts, last_error), "shard-unavailable")

    # -- replicated writes ---------------------------------------------------

    #: Analyze-request fields that identify the workload — the seed
    #: request must carry them verbatim so the replica derives the
    #: same CacheKey as the home shard.
    _SPEC_FIELDS = ("source", "benchmark", "query", "input_types",
                    "config", "or_width", "baseline")

    def _maybe_replicate(self, home: str, preference: Tuple[str, ...],
                         request: dict, response: bytes,
                         read_repair: bool = False) -> None:
        """After a successful analyze on ``home``: push the result into
        the next ``replicate - 1`` replicas' memory tiers, in the
        background.  Only *fresh* computations replicate — cache hits
        and coalesced riders were already seeded when first computed.

        ``read_repair`` is set when this response came from a failover:
        a replica that had to *recompute* a digest the ``_seeded`` LRU
        considers already-pushed is proof the seeded copies did not
        survive, so the dedupe entry is dropped and the push redone."""
        try:
            envelope = decode_message(response)
        except ProtocolError:
            return
        if not envelope.get("ok"):
            return
        result = envelope.get("result") or {}
        if result.get("cached") or result.get("coalesced"):
            return
        digest = result.get("key")
        if not digest:
            return
        if digest in self._seeded:
            if not read_repair:
                return
            self._seeded.pop(digest, None)
            self.stats.read_repairs += 1
        self._seeded[digest] = True
        if len(self._seeded) > 4096:
            self._seeded.popitem(last=False)
        task = asyncio.ensure_future(
            self._replicate(home, preference, request, result))
        self._replication_tasks.add(task)
        task.add_done_callback(self._replication_tasks.discard)

    async def _replicate(self, home: str, preference: Tuple[str, ...],
                         request: dict, result: dict) -> None:
        spec = {field: request[field] for field in self._SPEC_FIELDS
                if request.get(field) is not None}
        payload = result.get("payload")
        if payload is None:
            # Most clients ask payload=False, so the forwarded bytes
            # carry no tables; re-fetch from the home shard — a memory
            # hit there, it just computed the result.
            home_shard = self.shards.get(home)
            if home_shard is None:
                return
            try:
                envelope = await home_shard.request(
                    dict(spec, id=None, op="analyze", payload=True),
                    timeout=30.0)
            except (asyncio.TimeoutError, ProtocolError,
                    *_FORWARD_ERRORS):
                self.stats.replication_failures += 1
                return
            if not envelope.get("ok"):
                self.stats.replication_failures += 1
                return
            payload = envelope["result"].get("payload")
            if payload is None:
                self.stats.replication_failures += 1
                return
        seed_line = encode_message(
            dict(spec, id=None, op="seed", payload=payload))
        replicas = [node for node in preference if node != home]
        for node in replicas[:self.replicate - 1]:
            shard = self.shards.get(node)
            if shard is None or shard.status != "up":
                continue
            try:
                envelope = decode_message(
                    await shard.request_raw(seed_line, 30.0))
            except (asyncio.TimeoutError, ProtocolError,
                    *_FORWARD_ERRORS):
                self.stats.replication_failures += 1
                continue
            if envelope.get("ok"):
                self.stats.replications += 1
            else:
                self.stats.replication_failures += 1

    # -- fan-out ops ---------------------------------------------------------

    async def _op_batch(self, request: dict) -> dict:
        """Split a batch by owning shard, fan out the sub-batches
        concurrently, and reassemble results in job order."""
        raw_jobs = request.get("jobs")
        if raw_jobs is None and request.get("benchmarks") is not None:
            raw_jobs = [{"benchmark": name}
                        for name in request["benchmarks"]]
        if not isinstance(raw_jobs, list) or not raw_jobs:
            raise RequestError("'batch' needs a non-empty 'jobs' or "
                               "'benchmarks' list")
        groups: "OrderedDict[str, List[Tuple[int, dict]]]" = OrderedDict()
        preferences: Dict[str, Tuple[str, ...]] = {}
        for index, job in enumerate(raw_jobs):
            if not isinstance(job, dict):
                raise RequestError("batch jobs must be objects")
            preference = self.ring.preference(self._routing_hash(job))
            node = preference[0]
            groups.setdefault(node, []).append((index, job))
            # Failover order for the whole group: the preference list
            # of its first job (all members share the primary).
            preferences.setdefault(node, preference)
        common = {field: request[field]
                  for field in ("payload", "timeout")
                  if request.get(field) is not None}

        async def one_group(node: str,
                            members: List[Tuple[int, dict]]) -> list:
            sub_request = dict(common, id=None, op="batch",
                               jobs=[job for _, job in members])
            try:
                raw = await self._forward_line(
                    encode_message(sub_request), sub_request,
                    preference=preferences[node])
                response = decode_message(raw)
            except RequestError as error:
                return [(index, {
                    "name": str(job.get("benchmark") or job.get("name")
                                or "job %d" % index),
                    "ok": False, "error": str(error),
                    "code": error.code,
                }) for index, job in members]
            if not response.get("ok"):
                return [(index, {
                    "name": str(job.get("benchmark") or job.get("name")
                                or "job %d" % index),
                    "ok": False,
                    "error": response.get("error", "unknown error"),
                    "code": response.get("code"),
                }) for index, job in members]
            jobs = response["result"]["jobs"]
            return [(index, jobs[slot])
                    for slot, (index, _) in enumerate(members)]

        outcomes = await asyncio.gather(
            *(one_group(node, members)
              for node, members in groups.items()))
        slots: List[Optional[dict]] = [None] * len(raw_jobs)
        for group in outcomes:
            for index, job_result in group:
                slots[index] = job_result
        return {"jobs": slots, "shards": len(groups)}

    async def _fanout(self, message: dict,
                      timeout: Optional[float] = 30.0) -> Dict[str, dict]:
        """Send ``message`` to every non-down shard; map shard id to
        the decoded response envelope (or an error pseudo-envelope)."""

        async def one(shard: ShardState) -> Tuple[str, dict]:
            try:
                return shard.id, await shard.request(
                    dict(message, id=None), timeout)
            except (asyncio.TimeoutError, ProtocolError,
                    *_FORWARD_ERRORS) as error:
                shard.note_failure(self.down_after)
                return shard.id, {"ok": False, "error": str(error),
                                  "code": "shard-unavailable"}

        shards = [shard for shard in self.shards.values()
                  if shard.status != "down"]
        return dict(await asyncio.gather(*(one(s) for s in shards)))

    async def _broadcast_invalidate(self, request: dict) -> dict:
        message = {"op": "invalidate"}
        for field in ("source", "program_hash"):
            if request.get(field) is not None:
                message[field] = request[field]
        if len(message) == 1:
            raise RequestError("'invalidate' needs 'source' or "
                               "'program_hash'")
        responses = await self._fanout(message)
        total = 0
        prog_hash = None
        per_shard = {}
        for shard_id, response in responses.items():
            if response.get("ok"):
                result = response["result"]
                per_shard[shard_id] = result["invalidated"]
                total += result["invalidated"]
                prog_hash = result["program_hash"]
            else:
                per_shard[shard_id] = response.get("error")
        return {"program_hash": prog_hash, "invalidated": total,
                "shards": per_shard}

    # -- local ops -----------------------------------------------------------

    async def _op_ping(self, request: dict) -> dict:
        return {"pong": True, "router": True, "pid": os.getpid(),
                "draining": self._draining}

    async def _op_route(self, request: dict) -> dict:
        """Debug/testing: where would this workload go?"""
        key = self._routing_hash(request)
        preference = self.ring.preference(key)
        target = next((node for node in preference
                       if self.shards[node].available), None)
        return {"program_hash": key, "preference": list(preference),
                "target": target}

    async def _op_router_info(self, request: dict) -> dict:
        info = {
            "pid": os.getpid(),
            "uptime": round(time.time() - self.stats.started, 3),
            "draining": self._draining,
            "cache_dir": self.cache_dir,
            "vnodes": self.ring.vnodes,
            "retries": self.retries,
            "backoff": self.backoff,
            "health_interval": self.health_interval,
            "down_after": self.down_after,
            "replicate": self.replicate,
            "restart_backoff": self.restart_backoff,
            "breaker_deaths": self.breaker_deaths,
            "breaker_window": self.breaker_window,
            "requests": self.stats.requests,
            "routed": self.stats.routed,
            "local": self.stats.local,
            "failovers": self.stats.failovers,
            "forward_retries": self.stats.retries,
            "errors": self.stats.errors,
            "restarts": self.stats.restarts,
            "restart_failures": self.stats.restart_failures,
            "breaker_trips": self.stats.breaker_trips,
            "shards_added": self.stats.shards_added,
            "shards_removed": self.stats.shards_removed,
            "replications": self.stats.replications,
            "replication_failures": self.stats.replication_failures,
            "anti_entropy_interval": self.anti_entropy_interval,
            "anti_entropy_passes": self.stats.anti_entropy_passes,
            "anti_entropy_repairs": self.stats.anti_entropy_repairs,
            "anti_entropy_failures": self.stats.anti_entropy_failures,
            "read_repairs": self.stats.read_repairs,
            "role": ("standby" if self.sync_from is not None
                     and self.primary_reachable else "primary"),
            "sync_from": (None if self.sync_from is None
                          else "%s:%d" % self.sync_from),
            "primary_reachable": (self.primary_reachable
                                  if self.sync_from is not None
                                  else None),
            "sync_pulls": self.stats.sync_pulls,
            "sync_failures": self.stats.sync_failures,
            "last_sync_at": self.last_sync_at,
            "journal": (None if self.journal is None else {
                "path": self.journal.path,
                "seq": self.journal.seq,
                "replayed": self.journal_replayed,
                "compactions": self.journal.compactions,
            }),
            "membership_log": list(self.membership_log),
            "faults": (None if self.faults is None
                       else self.faults.describe()),
            "ring": list(self.ring.nodes),
            "shards": {shard_id: shard.info()
                       for shard_id, shard in self.shards.items()},
            "latency": self.stats.latency_summary(),
        }
        if self.l2 is not None:
            loop = asyncio.get_running_loop()
            info["l2_entries"] = await loop.run_in_executor(
                None, len, self.l2)
        return info

    async def _op_stats(self, request: dict) -> dict:
        """Fleet-wide ``stats``: per-shard snapshots plus merged
        counters, one endpoint for the whole cluster."""
        responses = await self._fanout({"op": "stats"})
        shards: Dict[str, dict] = {}
        merged = {
            "shards_up": 0, "shards_down": 0, "shards_draining": 0,
            "requests": 0, "analyses_executed": 0, "coalesced": 0,
            "rejected": 0, "timeouts": 0, "errors": 0,
            "queue_depth": 0,
            "cache": {"hits": 0, "memory_hits": 0, "disk_hits": 0,
                      "misses": 0, "puts": 0, "evictions": 0,
                      "invalidations": 0, "hit_rate": None},
            "latency": {"count": 0, "mean": None, "p50_max": None,
                        "p95_max": None},
        }
        for shard in self.shards.values():
            bucket = ("shards_draining" if shard.status == "draining"
                      else "shards_down" if shard.status == "down"
                      else "shards_up")
            merged[bucket] += 1
        mean_weight = 0.0
        for shard_id, response in responses.items():
            if not response.get("ok"):
                shards[shard_id] = {"error": response.get("error"),
                                    "code": response.get("code")}
                continue
            stats = response["result"]
            shards[shard_id] = stats
            for field in ("requests", "analyses_executed", "coalesced",
                          "rejected", "timeouts", "errors",
                          "queue_depth"):
                merged[field] += stats.get(field, 0)
            for field in merged["cache"]:
                if field != "hit_rate":
                    merged["cache"][field] += \
                        stats.get("cache", {}).get(field, 0) or 0
            latency = stats.get("latency", {})
            count = latency.get("count") or 0
            if count:
                merged["latency"]["count"] += count
                if latency.get("mean") is not None:
                    mean_weight += latency["mean"] * count
                for src, dst in (("p50", "p50_max"), ("p95", "p95_max")):
                    value = latency.get(src)
                    if value is not None:
                        current = merged["latency"][dst]
                        merged["latency"][dst] = (
                            value if current is None
                            else max(current, value))
        lookups = merged["cache"]["hits"] + merged["cache"]["misses"]
        if lookups:
            merged["cache"]["hit_rate"] = round(
                merged["cache"]["hits"] / lookups, 4)
        if merged["latency"]["count"]:
            merged["latency"]["mean"] = round(
                mean_weight / merged["latency"]["count"], 6)
        return {
            "router": {
                "pid": os.getpid(),
                "uptime": round(time.time() - self.stats.started, 3),
                "draining": self._draining,
                "requests": self.stats.requests,
                "routed": self.stats.routed,
                "local": self.stats.local,
                "failovers": self.stats.failovers,
                "forward_retries": self.stats.retries,
                "errors": self.stats.errors,
                "restarts": self.stats.restarts,
                "restart_failures": self.stats.restart_failures,
                "breaker_trips": self.stats.breaker_trips,
                "shards_added": self.stats.shards_added,
                "shards_removed": self.stats.shards_removed,
                "replications": self.stats.replications,
                "replication_failures": self.stats.replication_failures,
                "anti_entropy_passes": self.stats.anti_entropy_passes,
                "anti_entropy_repairs": self.stats.anti_entropy_repairs,
                "anti_entropy_failures":
                    self.stats.anti_entropy_failures,
                "read_repairs": self.stats.read_repairs,
                "sync_pulls": self.stats.sync_pulls,
                "sync_failures": self.stats.sync_failures,
                "latency": self.stats.latency_summary(),
            },
            "merged": merged,
            "shards": shards,
        }

    async def _op_cache_info(self, request: dict) -> dict:
        responses = await self._fanout({"op": "cache-info"})
        shards = {shard_id: (response["result"] if response.get("ok")
                             else {"error": response.get("error")})
                  for shard_id, response in responses.items()}
        # The shards share one disk store, so per-shard entry counts
        # overlap; the fleet-wide figure is the max, not the sum.
        entries = [info.get("entries", 0) for info in shards.values()
                   if "error" not in info]
        return {"shards": shards,
                "entries": max(entries) if entries else 0,
                "shared_cache_dir": self.cache_dir}

    async def _op_drain_shard(self, request: dict) -> dict:
        self._membership_guard()
        shard = self._shard_of(request)
        shard.status = "draining"
        if bool(request.get("shutdown", False)):
            deadline = time.monotonic() + 30.0
            while shard.inflight > 0 and time.monotonic() < deadline:
                await asyncio.sleep(0.02)
            try:
                await shard.request({"id": None, "op": "shutdown"},
                                    timeout=10.0)
            except (asyncio.TimeoutError, ProtocolError,
                    *_FORWARD_ERRORS):
                pass
        return {"shard": shard.id, "status": shard.status,
                "inflight": shard.inflight}

    async def _op_undrain_shard(self, request: dict) -> dict:
        self._membership_guard()
        shard = self._shard_of(request)
        if shard.status == "draining":
            shard.status = "up"
            shard.consecutive_failures = 0
        return {"shard": shard.id, "status": shard.status}

    async def _op_add_shard(self, request: dict) -> dict:
        """Join a running ``repro serve`` to the ring — after a health
        probe passes, so a typo'd address never lands in rotation.
        Consistent hashing moves only the joining shard's slice."""
        self._membership_guard()
        host = request.get("host")
        port = request.get("port")
        if not isinstance(host, str) or not isinstance(port, int):
            raise RequestError("'add-shard' needs 'host' (string) and "
                               "'port' (integer)")
        shard_id = str(request.get("shard") or "%s:%d" % (host, port))
        if shard_id in self.shards:
            raise RequestError("shard %s already in the ring" % shard_id)
        shard = ShardState(shard_id, host, port, self.pool_size)
        try:
            response = await shard.request({"id": None, "op": "ping"},
                                           timeout=10.0)
        except (asyncio.TimeoutError, ProtocolError,
                *_FORWARD_ERRORS) as error:
            raise RequestError(
                "health probe of %s:%d failed (%s) — shard not added"
                % (host, port, error), "shard-unavailable")
        if not response.get("ok"):
            raise RequestError(
                "health probe of %s:%d answered an error — shard not "
                "added" % (host, port), "shard-unavailable")
        self.shards[shard_id] = shard
        self.ring.add(shard_id)
        self.stats.shards_added += 1
        # host/port ride along so journal replay can rebuild the
        # ShardState on the next startup.
        self._journal("add-shard", shard_id, host=host, port=port)
        print("repro router: shard %s joined the ring (%d shards)"
              % (shard_id, len(self.shards)), file=sys.stderr)
        return {"shard": shard_id, "shards": len(self.shards),
                "ring": list(self.ring.nodes)}

    async def _op_remove_shard(self, request: dict) -> dict:
        """Drain a shard, then delete it from the ring.  With
        ``shutdown: true`` the shard process is also asked to exit
        (the default for shards this router spawned)."""
        self._membership_guard()
        shard = self._shard_of(request)
        live = [s for s in self.shards.values() if s.id != shard.id]
        if not live:
            raise RequestError("cannot remove the last shard")
        # Drain first: new requests route around a draining shard
        # (``available`` is False) while in-flight ones finish.
        shard.status = "draining"
        deadline = time.monotonic() + 30.0
        while shard.inflight > 0 and time.monotonic() < deadline:
            await asyncio.sleep(0.02)
        drained = shard.inflight == 0
        shutdown = request.get("shutdown")
        if shutdown is None:
            shutdown = shard.process is not None
        if shutdown:
            try:
                await shard.request({"id": None, "op": "shutdown"},
                                    timeout=10.0)
            except (asyncio.TimeoutError, ProtocolError,
                    *_FORWARD_ERRORS):
                pass
        shard.close_idle()
        self.ring.remove(shard.id)
        del self.shards[shard.id]
        self.stats.shards_removed += 1
        self._journal("remove-shard", shard.id, drained=drained,
                      shutdown=bool(shutdown))
        print("repro router: shard %s left the ring (%d shards)"
              % (shard.id, len(self.shards)), file=sys.stderr)
        return {"shard": shard.id, "drained": drained,
                "shards": len(self.shards),
                "ring": list(self.ring.nodes)}

    def _shard_of(self, request: dict) -> ShardState:
        shard_id = request.get("shard")
        shard = self.shards.get(str(shard_id))
        if shard is None:
            raise RequestError("unknown shard %r (configured: %s)"
                               % (shard_id,
                                  ", ".join(sorted(self.shards))))
        return shard

    async def _op_sync_membership(self, request: dict) -> dict:
        """The standby's poll target: this router's current membership
        view, cheap enough for a 1 Hz cadence.  Also answered *by* a
        standby — chained standbys and observability tools read it."""
        return {
            "seq": 0 if self.journal is None else self.journal.seq,
            "role": ("standby" if self.sync_from is not None
                     and self.primary_reachable else "primary"),
            "replicate": self.replicate,
            "draining": self._draining,
            "shards": [{"id": shard.id, "host": shard.host,
                        "port": shard.port, "status": shard.status,
                        "spawned": shard.process is not None}
                       for shard in self.shards.values()],
        }

    async def _op_anti_entropy(self, request: dict) -> dict:
        """Force one replica-repair pass now (tests, runbooks) instead
        of waiting for the periodic loop."""
        if self.replicate < 2:
            raise RequestError(
                "anti-entropy compares copies across the replication "
                "window — it needs --replicate >= 2 (this router has "
                "replicate=%d)" % self.replicate)
        return await self._anti_entropy_pass()

    async def _op_shutdown(self, request: dict) -> dict:
        inflight = self._inflight_requests - 1  # minus this request
        self._draining = True
        loop = asyncio.get_running_loop()
        loop.call_soon(self.trigger_shutdown)
        return {"draining": inflight}

    _LOCAL_OPS = {
        "ping": _op_ping,
        "route": _op_route,
        "router-info": _op_router_info,
        "stats": _op_stats,
        "cache-info": _op_cache_info,
        "drain-shard": _op_drain_shard,
        "undrain-shard": _op_undrain_shard,
        "add-shard": _op_add_shard,
        "remove-shard": _op_remove_shard,
        "sync-membership": _op_sync_membership,
        "anti-entropy": _op_anti_entropy,
        "shutdown": _op_shutdown,
    }


# -- CLI ---------------------------------------------------------------------

def _fleet_address(entry, field: str) -> Tuple[str, int]:
    if isinstance(entry, str):
        return _parse_shard_address(entry)
    if isinstance(entry, dict) and isinstance(entry.get("host"), str):
        try:
            return entry["host"], int(entry["port"])
        except (KeyError, TypeError, ValueError):
            pass
    raise ValueError("fleet %r entry %r is neither 'HOST:PORT' nor "
                     "{\"host\": ..., \"port\": ...}" % (field, entry))


def load_fleet(path: str) -> dict:
    """Parse a ``fleet.json`` deployment spec.

    The spec names the whole deployment once — every router and every
    externally-started shard, plus the knobs they must agree on::

        {
          "routers":   ["10.0.0.1:7870", "10.0.0.2:7870"],
          "shards":    ["10.0.0.3:7871",
                        {"host": "10.0.0.4", "port": 7871}],
          "replicate": 2,
          "cache_dir": "/srv/repro-cache",
          "journal":   "/srv/repro-cache/membership.journal",
          "vnodes":    64
        }

    Returns the spec with ``routers`` and ``shards`` normalized to
    ``[(host, port), ...]``.  Routers are ordered: the first entry is
    the primary, the rest are standbys (``--sync-from``), and clients
    hand the whole list to ``ServeClient(endpoints=...)``.  Unknown
    fields pass through untouched so specs can carry site-local notes.
    """
    with open(path, "r", encoding="utf-8") as handle:
        spec = json.load(handle)
    if not isinstance(spec, dict):
        raise ValueError("fleet spec must be a JSON object, got %s"
                         % type(spec).__name__)
    fleet = dict(spec)
    for field in ("routers", "shards"):
        entries = spec.get(field) or []
        if not isinstance(entries, list):
            raise ValueError("fleet %r must be a list" % field)
        fleet[field] = [_fleet_address(entry, field)
                        for entry in entries]
    return fleet


def router_main(argv) -> int:
    """``repro router``: run the cluster front door until shutdown."""
    parser = argparse.ArgumentParser(
        prog="repro router",
        description="Consistent-hash router over repro serve shards: "
                    "each program's workloads stick to one shard (warm "
                    "caches), a shared --cache-dir is the cross-shard "
                    "L2, and failed shards fail over to the next "
                    "replica on the ring.")
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=DEFAULT_ROUTER_PORT,
                        help="router TCP port (0 picks an ephemeral "
                             "one; default %d)" % DEFAULT_ROUTER_PORT)
    parser.add_argument("--shard", action="append", default=[],
                        metavar="HOST:PORT",
                        help="backend repro serve address (repeatable)")
    parser.add_argument("--spawn", type=int, default=0, metavar="N",
                        help="spawn N local repro serve shards on "
                             "ephemeral ports (owned by the router: "
                             "drained and stopped with it)")
    parser.add_argument("--cache-dir", default=None,
                        help="shared on-disk result cache directory — "
                             "the cross-shard L2 (forwarded to spawned "
                             "shards)")
    parser.add_argument("--vnodes", type=int, default=64,
                        help="virtual nodes per shard on the hash ring "
                             "(default 64)")
    parser.add_argument("--pool-size", type=int, default=4,
                        help="pooled connections (max in-flight "
                             "requests) per shard (default 4)")
    parser.add_argument("--retries", type=int, default=2,
                        help="extra failover passes over the replica "
                             "preference list for idempotent ops "
                             "(default 2)")
    parser.add_argument("--backoff", type=float, default=0.05,
                        help="initial backoff between failover passes, "
                             "doubling up to 1s (default 0.05)")
    parser.add_argument("--health-interval", type=float, default=1.0,
                        help="seconds between shard health probes "
                             "(default 1.0)")
    parser.add_argument("--down-after", type=int, default=2,
                        help="consecutive failures before a shard is "
                             "marked down (default 2)")
    parser.add_argument("--timeout", type=float, default=300.0,
                        help="per-request timeout cap in seconds "
                             "(default 300; 0 disables)")
    parser.add_argument("--workers", type=int, default=0,
                        help="--workers forwarded to spawned shards")
    parser.add_argument("--max-memory-entries", type=int, default=256,
                        help="--max-memory-entries forwarded to "
                             "spawned shards")
    parser.add_argument("--replicate", type=int, default=1,
                        help="memory-tier copies of each fresh analyze "
                             "result (1 = home shard only; R > 1 seeds "
                             "the next R-1 ring replicas; default 1)")
    parser.add_argument("--restart-backoff", type=float, default=0.5,
                        help="initial delay before restarting a dead "
                             "spawned shard, doubling per death "
                             "(default 0.5)")
    parser.add_argument("--restart-backoff-max", type=float,
                        default=30.0,
                        help="backoff ceiling for shard restarts "
                             "(default 30)")
    parser.add_argument("--breaker-deaths", type=int, default=5,
                        help="deaths within --breaker-window that trip "
                             "the crash-loop breaker (default 5)")
    parser.add_argument("--breaker-window", type=float, default=30.0,
                        help="sliding window in seconds for the "
                             "crash-loop breaker (default 30)")
    parser.add_argument("--shard-log-dir", default=None, metavar="DIR",
                        help="directory for spawned-shard stderr logs "
                             "(default: <cache-dir>/shard-logs when "
                             "--cache-dir is set, else discarded)")
    parser.add_argument("--shard-log-max-bytes", type=int,
                        default=1048576, metavar="N",
                        help="rotate a spawned shard's stderr log to "
                             "<log>.1 when a (re)spawn finds it at or "
                             "past N bytes, keeping one generation "
                             "(default 1 MiB; 0 disables)")
    parser.add_argument("--journal", default=None, metavar="FILE",
                        help="durable membership journal (append-only "
                             "JSON lines) replayed on startup so "
                             "add-shard/remove-shard survive router "
                             "restarts; default <cache-dir>/"
                             "membership.journal when --cache-dir is "
                             "set ('-standby' suffixed under "
                             "--sync-from); 'none' disables")
    parser.add_argument("--sync-from", default=None, metavar="HOST:PORT",
                        help="run as a standby: mirror this primary "
                             "router's membership via its "
                             "sync-membership op, refusing membership "
                             "writes here until the primary has missed "
                             "--down-after consecutive sync polls")
    parser.add_argument("--anti-entropy-interval", type=float,
                        default=5.0, metavar="SECONDS",
                        help="seconds between replica-repair passes "
                             "that re-seed memory-tier entries lost to "
                             "restarts or invalidation races (needs "
                             "--replicate >= 2; 0 disables; default 5)")
    parser.add_argument("--fleet", default=None, metavar="FILE",
                        help="fleet.json deployment spec supplying "
                             "shards and defaults for replicate/"
                             "cache-dir/vnodes/journal (explicit flags "
                             "win); listed shards are attached with "
                             "skip-only supervision — never restarted "
                             "by this router")
    parser.add_argument("--faults", metavar="SPEC", default=None,
                        help="deterministic fault plan for the "
                             "*router's* listener: inline JSON or "
                             "@file (see repro.service.faults)")
    parser.add_argument("--shard-faults", metavar="SPEC", default=None,
                        help="fault plan forwarded to spawned shards "
                             "via their --faults flag")
    args = parser.parse_args(argv)

    if args.fleet:
        try:
            fleet = load_fleet(args.fleet)
        except (OSError, ValueError) as error:
            parser.error("--fleet: %s" % error)
        for fleet_host, fleet_port in fleet["shards"]:
            address = "%s:%d" % (fleet_host, fleet_port)
            if address not in args.shard:
                args.shard.append(address)
        # Fleet values are defaults; anything given explicitly on the
        # command line (i.e. differing from the parser default) wins.
        for field in ("replicate", "cache_dir", "vnodes", "journal",
                      "pool_size", "shard_log_dir",
                      "anti_entropy_interval"):
            value = fleet.get(field)
            if (value is not None
                    and getattr(args, field) == parser.get_default(field)):
                setattr(args, field, value)

    if args.sync_from:
        try:
            _parse_shard_address(args.sync_from)
        except ValueError as error:
            parser.error("--sync-from: %s" % error)

    journal_path = args.journal
    if journal_path is None and args.cache_dir:
        journal_path = os.path.join(
            args.cache_dir,
            "membership-standby.journal" if args.sync_from
            else "membership.journal")
    elif journal_path == "none":
        journal_path = None

    from .faults import FaultSpecError, parse_fault_spec
    faults = None
    if args.faults:
        try:
            faults = parse_fault_spec(args.faults)
        except FaultSpecError as error:
            parser.error("--faults: %s" % error)
    if args.shard_faults:
        try:
            parse_fault_spec(args.shard_faults)  # fail fast, here
        except FaultSpecError as error:
            parser.error("--shard-faults: %s" % error)

    shard_addresses: List[str] = list(args.shard)
    spawned = []
    if args.spawn:
        from .client import spawn_server
        log_dir = args.shard_log_dir
        if log_dir is None and args.cache_dir:
            log_dir = os.path.join(args.cache_dir, "shard-logs")
        if log_dir:
            os.makedirs(log_dir, exist_ok=True)
        shard_args = ["--timeout", str(args.timeout or 0),
                      "--workers", str(args.workers),
                      "--max-memory-entries",
                      str(args.max_memory_entries)]
        if args.cache_dir:
            shard_args += ["--cache-dir", args.cache_dir]
        if args.shard_faults:
            shard_args += ["--faults", args.shard_faults]
        for index in range(args.spawn):
            log_path = (os.path.join(log_dir, "shard-%d.log" % index)
                        if log_dir else None)
            process, shard_host, shard_port = spawn_server(
                *shard_args, stderr_path=log_path,
                log_max_bytes=args.shard_log_max_bytes)
            spawned.append((process, shard_host, shard_port, log_path))
            shard_addresses.append("%s:%d" % (shard_host, shard_port))
            print("repro router: spawned shard %d at %s:%d (pid %d%s)"
                  % (index, shard_host, shard_port, process.pid,
                     ", log %s" % log_path if log_path else ""),
                  file=sys.stderr)
    if not shard_addresses and not args.sync_from and not journal_path:
        parser.error("give at least one --shard HOST:PORT, --spawn N, "
                     "a --fleet spec with shards, a --journal to "
                     "replay, or --sync-from a primary")

    try:
        router = ClusterRouter(
            shard_addresses, host=args.host, port=args.port,
            cache_dir=args.cache_dir, vnodes=args.vnodes,
            pool_size=args.pool_size, retries=args.retries,
            backoff=args.backoff, health_interval=args.health_interval,
            down_after=args.down_after,
            request_timeout=(None if not args.timeout else args.timeout),
            replicate=args.replicate,
            restart_backoff=args.restart_backoff,
            restart_backoff_max=args.restart_backoff_max,
            breaker_deaths=args.breaker_deaths,
            breaker_window=args.breaker_window,
            faults=faults,
            journal_path=journal_path,
            sync_from=args.sync_from,
            anti_entropy_interval=args.anti_entropy_interval,
            shard_log_max_bytes=args.shard_log_max_bytes)
    except ValueError as error:
        for process, _, _, _ in spawned:
            process.terminate()
        parser.error(str(error))
    for process, shard_host, shard_port, log_path in spawned:
        shard = router.shards["%s:%d" % (shard_host, shard_port)]
        shard.process = process
        shard.log_path = log_path
        # The respawn recipe: the original argv with the ephemeral
        # port pinned, so a restarted shard comes back *on the same
        # address* and the ring never changes under supervision.
        shard.spawn_argv = (["serve", "--port", str(shard_port)]
                            + shard_args)

    async def run() -> None:
        await router.start()
        # The ready line is a stable interface: tests and the load
        # generator parse host/port out of it.
        print("repro router listening on %s:%d (pid %d, shards=%d)"
              % (router.host, router.port, os.getpid(),
                 len(router.shards)), flush=True)
        loop = asyncio.get_running_loop()
        try:
            import signal
            for signum in (signal.SIGINT, signal.SIGTERM):
                loop.add_signal_handler(signum, router.trigger_shutdown)
        except (ImportError, NotImplementedError):
            pass
        await router.serve_until_shutdown()
        print("repro router: drained and stopped", file=sys.stderr)

    try:
        asyncio.run(run())
    except KeyboardInterrupt:
        pass
    finally:
        for process, _, _, _ in spawned:
            if process.poll() is None:
                process.terminate()
        # Restarted shards are not in ``spawned``; sweep the live
        # shard table too so nothing outlives the router.
        for shard in router.shards.values():
            if shard.process is not None and shard.process.poll() is None:
                shard.process.terminate()
    return 0


if __name__ == "__main__":
    sys.exit(router_main(sys.argv[1:]))
