"""Canonical JSON serialization and content hashing of analysis
artifacts.

Everything the analyzer produces — grammars, abstract substitutions,
table entries, whole :class:`~repro.fixpoint.engine.AnalysisResult`
tables — encodes to plain JSON-ready objects and back, and everything
the analyzer consumes — programs, queries, input types,
:class:`~repro.fixpoint.engine.AnalysisConfig` — gets a stable content
hash.  The encodings are *canonical*: structurally equal values encode
to identical objects, so ``content_hash(encode(x))`` is a usable
content address (the substrate of :mod:`repro.service.cache`).

Program hashing works on the parsed form (``format_term`` of each
clause), so whitespace and comment edits do not change any hash;
per-predicate hashes (:func:`predicate_hashes`) are what the
incremental layer diffs to find edited predicates.
"""

from __future__ import annotations

import hashlib
import json
import weakref
from typing import Dict, Optional, Sequence, Union

from ..assertions.checker import CheckReport
from ..assertions.slicer import BlameSlice
from ..assertions.frontend import Assertion
from ..domains.leaf import LeafDomain, domain_from_descriptor
from ..domains.pattern import PAT_BOTTOM, AbstractSubst, PatNode
from ..fixpoint.engine import (AnalysisConfig, AnalysisResult,
                               AnalysisStats, Entry)
from ..prolog.program import PredId, Program, parse_program
from ..prolog.terms import format_term
from ..typegraph.grammar import Grammar

__all__ = [
    "FORMAT_VERSION", "canonical_json", "content_hash",
    "encode_grammar", "decode_grammar", "grammar_content_hash",
    "encode_subst", "decode_subst",
    "encode_entry", "decode_entry",
    "encode_result", "decode_result", "result_fingerprint",
    "payload_fingerprint",
    "encode_config", "decode_config", "config_hash",
    "encode_check", "decode_check", "check_fingerprint",
    "encode_input_types", "decode_input_types",
    "predicate_hashes", "program_hash",
]

#: Bump when any encoding changes shape — part of every cache key, so
#: stale on-disk artifacts from older formats are never decoded.
#: v2: AnalysisStats gained the opcache hit/miss counters.
#: v3: AnalysisStats gained the differential-engine counters
#: (clause_iterations_skipped, callsite_resumptions) and scheduler
#: provenance; AnalysisConfig gained ``differential``/``scheduler``.
#: v4: AnalysisStats gained ``arena_compiles`` (PR 4's arena kernel).
#: v5: AnalysisStats gained ``disjunction_fallbacks`` (oversized
#: disjunctions compiled to auxiliary predicates).
#: v6: AnalysisConfig gained ``keep_deps``/``assertions`` and check
#: payloads embed a ``check`` section (assertion verdicts + blame
#: slices).
FORMAT_VERSION = 6


# -- canonical JSON and hashing ----------------------------------------------

def canonical_json(obj) -> str:
    """Deterministic JSON text: sorted keys, no whitespace."""
    return json.dumps(obj, sort_keys=True, separators=(",", ":"))


def content_hash(obj) -> str:
    """SHA-256 of the canonical JSON of a JSON-ready object."""
    digest = hashlib.sha256(canonical_json(obj).encode("utf-8"))
    return digest.hexdigest()


# -- grammars ----------------------------------------------------------------

#: Per-instance content-hash memo for interned grammars: interning
#: makes structurally equal grammars one shared object, so the hash of
#: its canonical encoding is computed once per process instead of once
#: per cache-key/batch-job that mentions it.  Weak keys, so the memo
#: never outlives the intern table.
_GRAMMAR_HASH_MEMO: "weakref.WeakKeyDictionary[Grammar, str]" = \
    weakref.WeakKeyDictionary()


def grammar_content_hash(grammar: Grammar) -> str:
    """``content_hash(encode_grammar(grammar))``, memoized on interned
    instances (their encodings are immutable)."""
    if not grammar.interned:
        return content_hash(grammar.to_obj())
    digest = _GRAMMAR_HASH_MEMO.get(grammar)
    if digest is None:
        digest = content_hash(grammar.to_obj())
        _GRAMMAR_HASH_MEMO[grammar] = digest
    return digest


def encode_grammar(grammar: Grammar) -> dict:
    return grammar.to_obj()


def decode_grammar(data: dict) -> Grammar:
    return Grammar.from_obj(data)


# -- abstract substitutions --------------------------------------------------

def encode_subst(subst, domain: LeafDomain):
    """Encode a frozen substitution (or PAT_BOTTOM) against its leaf
    domain; leaf values go through :meth:`LeafDomain.encode_leaf`."""
    if subst is PAT_BOTTOM:
        return "bottom"
    assert isinstance(subst, AbstractSubst)
    nodes = []
    for node in subst.nodes:
        if node.is_leaf:
            nodes.append(["l", domain.encode_leaf(node.value)])
        elif node.is_int:
            nodes.append(["i", node.name])
        else:
            nodes.append(["f", node.name, list(node.args)])
    return {"nvars": subst.nvars, "sv": list(subst.sv), "nodes": nodes}


def decode_subst(data, domain: LeafDomain):
    if data == "bottom":
        return PAT_BOTTOM
    nodes = []
    for node in data["nodes"]:
        kind = node[0]
        if kind == "l":
            nodes.append(PatNode(value=domain.decode_leaf(node[1])))
        elif kind == "i":
            nodes.append(PatNode(node[1], True, ()))
        elif kind == "f":
            nodes.append(PatNode(node[1], False, tuple(node[2])))
        else:
            raise ValueError("unknown node kind: %r" % kind)
    # Interned on arrival: decoded substitutions join the process-wide
    # canonical instances (seeded re-analysis and cache promotion feed
    # them straight back into the engine's tables).
    from ..domains.pattern import intern_subst
    return intern_subst(AbstractSubst(int(data["nvars"]),
                                      tuple(data["sv"]), tuple(nodes)))


# -- table entries and whole results -----------------------------------------

def encode_entry(entry: Entry, domain: LeafDomain) -> dict:
    return {
        "id": entry.id,
        "pred": list(entry.pred),
        "beta_in": encode_subst(entry.beta_in, domain),
        "beta_out": encode_subst(entry.beta_out, domain),
        "dependents": sorted(entry.dependents),
        "updates": entry.updates,
        "iterations": entry.iterations,
        "seeded": entry.seeded,
    }


def decode_entry(data: dict, domain: LeafDomain) -> Entry:
    return Entry(
        id=int(data["id"]),
        pred=(data["pred"][0], int(data["pred"][1])),
        beta_in=decode_subst(data["beta_in"], domain),
        beta_out=decode_subst(data["beta_out"], domain),
        dependents=set(data.get("dependents", ())),
        updates=int(data.get("updates", 0)),
        iterations=int(data.get("iterations", 0)),
        seeded=bool(data.get("seeded", False)),
    )


def _encode_stats(stats: AnalysisStats) -> dict:
    return {
        "procedure_iterations": stats.procedure_iterations,
        "clause_iterations": stats.clause_iterations,
        "entries_created": stats.entries_created,
        "entries_seeded": stats.entries_seeded,
        "input_widenings": stats.input_widenings,
        "cpu_time": stats.cpu_time,
        "opcache_hits": stats.opcache_hits,
        "opcache_misses": stats.opcache_misses,
        "clause_iterations_skipped": stats.clause_iterations_skipped,
        "callsite_resumptions": stats.callsite_resumptions,
        "scheduler": stats.scheduler,
        "arena_compiles": stats.arena_compiles,
        "disjunction_fallbacks": stats.disjunction_fallbacks,
    }


def _decode_stats(data: dict) -> AnalysisStats:
    stats = AnalysisStats()
    for name in ("procedure_iterations", "clause_iterations",
                 "entries_created", "entries_seeded", "input_widenings",
                 "cpu_time", "opcache_hits", "opcache_misses",
                 "clause_iterations_skipped", "callsite_resumptions",
                 "scheduler", "arena_compiles", "disjunction_fallbacks"):
        if name in data:
            setattr(stats, name, data[name])
    return stats


def encode_result(result: AnalysisResult) -> dict:
    """Whole polyvariant table as a JSON-ready payload.  The program
    itself is *not* embedded — results are stored content-addressed by
    program hash, so the caller already has the source."""
    domain = result.domain
    return {
        "version": FORMAT_VERSION,
        "domain": domain.descriptor(),
        "root": result.root_entry.id,
        "entries": [encode_entry(e, domain) for e in result.entries],
        "unknown_predicates": [list(p) for p in result.unknown_predicates],
        "stats": _encode_stats(result.stats),
    }


def result_fingerprint(result: AnalysisResult) -> str:
    """Content hash of the *semantic* table: the multiset of
    (predicate, β_in, β_out, seeded) tuples, the root tuple by value,
    the leaf domain, and the unknown predicates.  Scheduling
    provenance — dependency edges, update/iteration counts, timing,
    and entry *ids* (creation order) — is deliberately excluded: two
    runs that compute the same types through different work or
    discovery order (operation caches on/off, differential
    re-evaluation on/off, a future worklist tweak) fingerprint
    identically, which is what the benchmark trajectory and the
    equivalence property tests compare."""
    domain = result.domain

    def tuple_of(entry: Entry) -> dict:
        return {
            "pred": list(entry.pred),
            "beta_in": encode_subst(entry.beta_in, domain),
            "beta_out": encode_subst(entry.beta_out, domain),
            "seeded": entry.seeded,
        }

    return content_hash({
        "domain": domain.descriptor(),
        "root": tuple_of(result.root_entry),
        "entries": sorted((tuple_of(e) for e in result.entries),
                          key=canonical_json),
        "unknown_predicates": [list(p)
                               for p in result.unknown_predicates],
    })


def payload_fingerprint(payload: dict) -> str:
    """:func:`result_fingerprint` computed directly from an
    :func:`encode_result` payload, without decoding it back into an
    ``AnalysisResult``.  The entry encodings already *are* the
    canonical forms the fingerprint hashes, so the two functions agree
    by construction (asserted in ``tests/test_serialize.py``) — this is
    what lets the server, the client, and the load generator compare
    fingerprints of cached/remote payloads against a one-shot run."""
    by_id = {int(entry["id"]): entry for entry in payload["entries"]}
    root = by_id[int(payload["root"])]

    def tuple_of(entry: dict) -> dict:
        return {
            "pred": entry["pred"],
            "beta_in": entry["beta_in"],
            "beta_out": entry["beta_out"],
            "seeded": entry["seeded"],
        }

    return content_hash({
        "domain": payload["domain"],
        "root": tuple_of(root),
        "entries": sorted((tuple_of(e) for e in payload["entries"]),
                          key=canonical_json),
        "unknown_predicates": payload["unknown_predicates"],
    })


def decode_result(data: dict, program=None,
                  domain: Optional[LeafDomain] = None) -> AnalysisResult:
    """Rebuild an :class:`AnalysisResult` from :func:`encode_result`
    output.  ``program`` (a :class:`NormProgram`) is optional; cache
    consumers that only read the table can leave it ``None``."""
    if data.get("version") != FORMAT_VERSION:
        raise ValueError("unsupported result format version: %r"
                         % data.get("version"))
    if domain is None:
        domain = domain_from_descriptor(data["domain"])
    entries = [decode_entry(e, domain) for e in data["entries"]]
    by_id = {e.id: e for e in entries}
    root = by_id[int(data["root"])]
    unknown = [(p[0], int(p[1])) for p in data["unknown_predicates"]]
    return AnalysisResult(program, domain, _decode_stats(data["stats"]),
                          root, entries, unknown)


# -- assertion check sections ------------------------------------------------

def encode_check(report: CheckReport, slices=()) -> dict:
    """The ``check`` section of a verification payload: every verdict
    plus the blame slices of the violations.  Embedded next to the
    encoded table in the cache payload, so a warm hit returns
    bit-identical verdicts without re-checking."""
    return {"verdicts": [v.to_obj() for v in report.verdicts],
            "slices": [s.to_obj() for s in slices]}


def decode_check(data: dict):
    """(CheckReport, [BlameSlice]) back out of :func:`encode_check`."""
    report = CheckReport.from_obj(data)
    slices = [BlameSlice.from_obj(s) for s in data.get("slices", ())]
    return report, slices


def check_fingerprint(check_obj: dict) -> str:
    """Content hash of one encoded ``check`` section — the stability
    contract: identical across kernel tiers, cache-warm/cold runs, and
    one-shot vs. served execution."""
    return content_hash({"verdicts": check_obj.get("verdicts", []),
                         "slices": check_obj.get("slices", [])})


# -- analysis inputs: config, input types, programs --------------------------

def encode_config(config: AnalysisConfig) -> dict:
    return {
        "max_or_width": config.max_or_width,
        "max_input_patterns": config.max_input_patterns,
        "widening_delay": config.widening_delay,
        "strict_widening_after": config.strict_widening_after,
        "max_procedure_iterations": config.max_procedure_iterations,
        "type_database": (None if config.type_database is None else
                          [g.to_obj() for g in config.type_database]),
        "differential": config.differential,
        "scheduler": config.scheduler,
        "keep_deps": config.keep_deps,
        "assertions": [a.to_obj() for a in config.assertions],
    }


def decode_config(data: dict) -> AnalysisConfig:
    type_database = data.get("type_database")
    if type_database is not None:
        type_database = [Grammar.from_obj(g) for g in type_database]
    return AnalysisConfig(
        max_or_width=data.get("max_or_width"),
        max_input_patterns=data.get("max_input_patterns", 8),
        widening_delay=data.get("widening_delay", 2),
        strict_widening_after=data.get("strict_widening_after", 12),
        max_procedure_iterations=data.get("max_procedure_iterations",
                                          200000),
        type_database=type_database,
        differential=data.get("differential", True),
        scheduler=data.get("scheduler", "lifo"),
        keep_deps=bool(data.get("keep_deps", False)),
        assertions=tuple(Assertion.from_obj(a)
                         for a in data.get("assertions", ())),
    )


def config_hash(config: Optional[AnalysisConfig]) -> str:
    """Content hash of the semantically relevant config knobs.

    ``differential`` is deliberately excluded: differential and full
    re-evaluation produce bit-identical tables (enforced by
    ``tests/test_differential_properties.py``), so it must not split
    the result cache — and the ``REPRO_DIFFERENTIAL`` override could
    not be reflected here anyway.  ``keep_deps`` is excluded for the
    same reason: retaining the dependency graph never changes the
    table.  ``scheduler`` *is* included: the iteration order feeds the
    widening sequence, so different schedulers may legitimately reach
    different (equally sound) tables.  ``assertions`` is included
    because check payloads fold verdicts in — a cached verdict must
    only ever be served for the exact assertion set it judged."""
    obj = encode_config(config if config is not None
                        else AnalysisConfig())
    obj.pop("differential", None)
    obj.pop("keep_deps", None)
    return content_hash(obj)


def encode_input_types(
        input_types: Optional[Sequence[Union[str, Grammar]]]):
    """Input type specs: strings pass through, grammars encode."""
    if input_types is None:
        return None
    return [spec if isinstance(spec, str) else ["g", spec.to_obj()]
            for spec in input_types]


def decode_input_types(data):
    if data is None:
        return None
    return [spec if isinstance(spec, str) else Grammar.from_obj(spec[1])
            for spec in data]


# -- program hashing ---------------------------------------------------------

def predicate_hashes(source: Union[str, Program]) -> Dict[PredId, str]:
    """Per-predicate content hash over the formatted clauses — stable
    under whitespace/comment edits, sensitive to any clause change
    (variable *renamings* do change the hash, which is merely
    conservative for invalidation)."""
    program = parse_program(source) if isinstance(source, str) else source
    hashes: Dict[PredId, str] = {}
    for pred, procedure in program.procedures.items():
        clause_texts = [repr(clause) for clause in procedure.clauses]
        hashes[pred] = content_hash(clause_texts)
    return hashes


def program_hash(source: Union[str, Program]) -> str:
    """Content hash of a whole program: the sorted per-predicate hashes
    plus directives."""
    program = parse_program(source) if isinstance(source, str) else source
    per_pred = sorted(
        [[pred[0], pred[1], digest]
         for pred, digest in predicate_hashes(program).items()])
    directives = [format_term(d) for d in program.directives]
    return content_hash({"version": FORMAT_VERSION,
                         "predicates": per_pred,
                         "directives": directives})
