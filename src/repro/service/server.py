"""Long-lived analysis daemon: ``repro serve``.

Every one-shot entry point (CLI, ``repro batch``) pays the same cold
start on each invocation — imports, parsing, arena compilation,
opcache warm-up — and then throws the warmed state away.  The server
keeps it: one resident process owns the process-wide intern tables,
the operation caches, the arena symbol table, and a
:class:`~repro.service.cache.ResultCache`, and serves analyses over a
newline-delimited JSON protocol.

Protocol (one JSON object per line, over TCP)::

    -> {"id": 1, "op": "analyze", "benchmark": "QU"}
    <- {"id": 1, "ok": true, "result": {"fingerprint": "...",
        "cached": false, "coalesced": false, "seconds": 0.004,
        "payload": {...encode_result...}}}

    -> {"op": "analyze", "source": "app([],L,L).\\n...",
        "query": ["app", 3], "input_types": ["list", "any", "any"]}
    -> {"op": "batch", "benchmarks": ["QU", "PL"]}
    -> {"op": "check", "benchmark": "CHK"}  # assertion verdicts for the
                              # program's own assert_* directives
    -> {"op": "slice", "source": "..."}     # verdicts + blame slices
    -> {"op": "stats"}        # cache hit rate, opcache/arena counters,
                              # queue depth, p50/p95 latency
    -> {"op": "cache-info"}
    -> {"op": "invalidate", "source": "..."}   # or "program_hash"
    -> {"op": "digest"}       # memory-tier (digest, program) inventory
    -> {"op": "fetch", "digest": "..."}    # memory entry by digest
    -> {"op": "ping"}
    -> {"op": "shutdown"}     # graceful: drain, flush cache, exit

Errors come back as ``{"id": ..., "ok": false, "error": "...",
"code": "bad-request" | "overloaded" | "timeout" | "shutting-down" |
"analysis-error"}`` — the connection stays usable.

Service guarantees:

* **Coalescing** — concurrent requests for the same
  :class:`~repro.service.cache.CacheKey` share one underlying
  computation; every requester gets the same payload and only one
  analysis runs (``stats.coalesced`` counts the riders).
* **Backpressure** — at most ``max_pending`` analyses may be in
  flight; a request that would start one more is rejected immediately
  with ``code="overloaded"`` instead of queueing without bound.  Cache
  hits and coalesced riders are always served.
* **Timeouts** — a responder waits at most ``request_timeout`` seconds
  (``code="timeout"``); the underlying computation is left to finish
  and populate the cache, so a retry is a hit.
* **Graceful shutdown** — ``shutdown`` (or SIGINT/SIGTERM) stops
  accepting computations, drains the in-flight ones, flushes the
  result cache to disk, and only then exits.

Execution model: analyses run either on one dedicated worker thread in
the server process (``workers=0``, the default — warmest, since the
request path and the analysis share every intern table) or on a
persistent :class:`~repro.service.batch.WorkerPool` of single-threaded
worker processes (``workers>=1``).  Both satisfy the
single-analysis-thread-per-process model the unlocked memo tables
require (see :mod:`repro.typegraph.opcache`); the asyncio event loop
itself never executes an analysis.
"""

from __future__ import annotations

import argparse
import asyncio
import json
import os
import sys
import time
from collections import OrderedDict, deque
from typing import Dict, Optional, Tuple

from dataclasses import replace as _replace

from ..fixpoint.engine import AnalysisConfig
from .batch import WorkerPool, _execute_spec
from .cache import CacheKey, ResultCache, make_key
from .serialize import (canonical_json, check_fingerprint, decode_config,
                        decode_input_types, encode_config,
                        encode_input_types, payload_fingerprint,
                        program_hash)
from .transport import (LINE_LIMIT as _LINE_LIMIT, LineServer,
                        ProtocolError, decode_message, error_envelope,
                        ok_envelope)

__all__ = ["AnalysisServer", "ServerStats", "RequestError",
           "DEFAULT_PORT", "serve_main"]

DEFAULT_PORT = 7871

#: Ring size of the latency sample buffer behind the p50/p95 figures.
_LATENCY_SAMPLES = 4096


class RequestError(Exception):
    """A request the server refuses; ``code`` travels to the client."""

    def __init__(self, message: str, code: str = "bad-request") -> None:
        super().__init__(message)
        self.code = code


class ServerStats:
    """Counters and a latency ring for the ``stats`` op."""

    __slots__ = ("started", "requests", "analyses_executed", "coalesced",
                 "rejected", "timeouts", "errors", "seeds", "latencies")

    def __init__(self) -> None:
        self.started = time.time()
        self.requests = 0
        self.analyses_executed = 0
        self.coalesced = 0
        self.rejected = 0
        self.timeouts = 0
        self.errors = 0
        self.seeds = 0
        self.latencies: "deque[float]" = deque(maxlen=_LATENCY_SAMPLES)

    def latency_summary(self) -> dict:
        samples = sorted(self.latencies)
        if not samples:
            return {"count": 0, "mean": None, "p50": None, "p95": None,
                    "max": None}
        count = len(samples)

        def pct(q: float) -> float:
            return samples[min(count - 1, int(q * count))]

        return {
            "count": count,
            "mean": round(sum(samples) / count, 6),
            "p50": round(pct(0.50), 6),
            "p95": round(pct(0.95), 6),
            "max": round(samples[-1], 6),
        }


class AnalysisServer:
    """The resident analyzer behind ``repro serve``.

    Usable embedded (tests build one inside an event loop) or through
    :func:`serve_main`.  All public coroutines must run on the loop
    that called :meth:`start`.
    """

    def __init__(self, host: str = "127.0.0.1", port: int = 0,
                 cache: Optional[ResultCache] = None,
                 workers: int = 0, max_pending: int = 64,
                 request_timeout: Optional[float] = 300.0,
                 faults=None) -> None:
        if max_pending < 1:
            raise ValueError("max_pending must be >= 1")
        self.host = host
        self.port = port
        self.cache = cache if cache is not None else ResultCache()
        self.workers = workers
        self.max_pending = max_pending
        self.request_timeout = request_timeout
        #: optional FaultPlan injected at the transport layer
        self.faults = faults
        self.stats = ServerStats()
        self._pool: Optional[WorkerPool] = None
        self._executor = None
        #: CacheKey digest -> future of the one in-flight computation.
        self._inflight: Dict[str, "asyncio.Future"] = {}
        self._pending = 0
        self._draining = False
        self._server: Optional[LineServer] = None
        self._shutdown_event: Optional[asyncio.Event] = None
        #: digest -> fingerprint memo (payload hashing is not free).
        self._fingerprints: "OrderedDict[str, str]" = OrderedDict()
        #: request signature -> (spec, CacheKey) memo.  ``make_key``
        #: parses the program to compute its canonical hash — paying
        #: that per *request* (instead of per distinct workload) used
        #: to dominate the warm hit path by ~20x.
        self._specs: "OrderedDict[tuple, Tuple[dict, CacheKey]]" = \
            OrderedDict()

    # -- lifecycle -----------------------------------------------------------

    async def start(self) -> None:
        """Bind and start accepting; ``self.port`` holds the actual
        port afterwards (pass ``port=0`` for an ephemeral one)."""
        if self.workers >= 1:
            self._pool = WorkerPool(self.workers)
            # Fork the workers *now*, while this is effectively a
            # single-threaded process: once requests flow, executor
            # threads may hold the cache/intern locks, and a fork
            # taken then could hand a child a forever-held lock.
            self._pool.prefork()
        else:
            from concurrent.futures import ThreadPoolExecutor
            # Exactly one analysis thread: the enforcement half of the
            # single-analysis-thread-per-process model.
            self._executor = ThreadPoolExecutor(
                max_workers=1, thread_name_prefix="repro-analysis")
        self._shutdown_event = asyncio.Event()
        self._server = LineServer(self._serve_line, self.host,
                                  self.port, limit=_LINE_LIMIT,
                                  faults=self.faults)
        await self._server.start()
        self.port = self._server.port

    async def serve_until_shutdown(self) -> None:
        """Run until a ``shutdown`` request (or :meth:`trigger_shutdown`),
        then drain and close."""
        assert self._shutdown_event is not None
        await self._shutdown_event.wait()
        await self.drain_and_close()

    def trigger_shutdown(self) -> None:
        """Request a graceful shutdown (signal handlers call this)."""
        self._draining = True
        if self._shutdown_event is not None:
            self._shutdown_event.set()

    async def drain_and_close(self) -> int:
        """Stop accepting, wait for in-flight analyses, flush the
        result cache to disk, and release the workers.  Returns the
        number of cache records flushed."""
        self._draining = True
        if self._server is not None:
            self._server.close()
        pending = [fut for fut in self._inflight.values()
                   if not fut.done()]
        if pending:
            await asyncio.wait(pending, timeout=self.request_timeout)
        flushed = self.cache.flush()
        # Hang up on remaining clients *before* wait_closed: their
        # handlers unblock on EOF, which is what wait_closed waits for
        # on Python >= 3.12.1.
        if self._server is not None:
            self._server.hang_up()
            await self._server.wait_closed()
        if self._pool is not None:
            self._pool.shutdown()
        if self._executor is not None:
            self._executor.shutdown(wait=True)
        return flushed

    # -- connection handling -------------------------------------------------

    async def _serve_line(self, line: bytes) -> dict:
        """:class:`LineServer` handler: one request line in, one
        response envelope out."""
        return await self._dispatch(line)

    async def _dispatch(self, line: bytes) -> dict:
        request_id = None
        try:
            try:
                request = decode_message(line)
            except ProtocolError as error:
                raise RequestError(str(error))
            request_id = request.get("id")
            op = request.get("op")
            handler = self._OPS.get(op)
            if handler is None:
                raise RequestError("unknown op %r (expected one of %s)"
                                   % (op, ", ".join(sorted(self._OPS))))
            result = await handler(self, request)
            return ok_envelope(request_id, result)
        except RequestError as error:
            if error.code not in ("overloaded", "timeout"):
                self.stats.errors += 1
            return error_envelope(request_id, str(error), error.code)
        except Exception as error:  # analysis/internal failure
            self.stats.errors += 1
            return error_envelope(request_id,
                                  "%s: %s" % (type(error).__name__, error),
                                  "analysis-error")

    # -- the analyze path ----------------------------------------------------

    @staticmethod
    def _spec_signature(request: dict) -> Optional[tuple]:
        """A hashable digest of every request field ``_spec_of`` reads,
        or None when the request is too malformed to sign (it then
        takes the slow path, which raises the proper error)."""
        try:
            raw_query = request.get("query")
            query = (None if raw_query is None
                     else (str(raw_query[0]), int(raw_query[1])))
            input_types = request.get("input_types")
            config = request.get("config")
            return (
                request.get("benchmark"), request.get("source"), query,
                None if input_types is None
                else canonical_json(input_types),
                None if config is None else canonical_json(config),
                request.get("or_width"),
                bool(request.get("baseline", False)),
                request.get("name"),
            )
        except (TypeError, ValueError, KeyError, IndexError):
            return None

    def _spec_of(self, request: dict) -> Tuple[dict, CacheKey]:
        """Validated ``_execute_spec`` form plus cache key, memoized.

        ``make_key`` re-parses the program to canonically hash it —
        ~1ms even for small sources, which used to dominate the warm
        hit path.  Repeat workloads (the entire point of a server) hit
        the memo instead.  Single-threaded: only the event loop calls
        this."""
        signature = self._spec_signature(request)
        if signature is not None:
            memo = self._specs
            hit = memo.get(signature)
            if hit is not None:
                memo.move_to_end(signature)
                return hit
        spec, key = self._spec_of_uncached(request)
        if signature is not None:
            memo[signature] = (spec, key)
            if len(memo) > 4096:
                memo.popitem(last=False)
        return spec, key

    def _spec_of_uncached(self, request: dict) -> Tuple[dict, CacheKey]:
        """Validate an analyze request into the ``_execute_spec`` form
        plus its cache key."""
        if request.get("benchmark") is not None:
            from ..benchprogs import benchmark
            try:
                bp = benchmark(str(request["benchmark"]))
            except KeyError:
                raise RequestError("unknown benchmark %r"
                                   % request["benchmark"])
            name, source, query = bp.name, bp.source, bp.query
            input_types = bp.input_types
        else:
            source = request.get("source")
            if not isinstance(source, str):
                raise RequestError("request needs 'source' (a string) "
                                   "or 'benchmark'")
            raw_query = request.get("query")
            if (not isinstance(raw_query, (list, tuple))
                    or len(raw_query) != 2):
                raise RequestError("'query' must be [name, arity]")
            try:
                query = (str(raw_query[0]), int(raw_query[1]))
            except (TypeError, ValueError):
                raise RequestError("query arity must be an integer, "
                                   "got %r" % (raw_query[1],))
            name = request.get("name") or "%s/%d" % query
            try:
                input_types = decode_input_types(
                    request.get("input_types"))
            except (TypeError, ValueError, KeyError, IndexError):
                raise RequestError("malformed 'input_types'")
            if (input_types is not None
                    and len(input_types) != query[1]):
                raise RequestError(
                    "input_types lists %d type(s) but %s/%d takes %d "
                    "argument(s)" % (len(input_types), query[0],
                                     query[1], query[1]))
        if request.get("config") is not None:
            try:
                config: Optional[AnalysisConfig] = \
                    decode_config(request["config"])
            except (TypeError, ValueError, KeyError):
                raise RequestError("malformed 'config'")
        elif request.get("or_width") is not None:
            config = AnalysisConfig(max_or_width=int(request["or_width"]))
        else:
            config = None
        baseline = bool(request.get("baseline", False))
        spec = {
            "name": name,
            "source": source,
            "query": list(query),
            "input_types": encode_input_types(input_types),
            "config": None if config is None else encode_config(config),
            "baseline": baseline,
        }
        key = make_key(source, query, input_types, config, baseline)
        return spec, key

    def _check_spec_of(self, request: dict) -> Tuple[dict, CacheKey]:
        """The verification form of an analyze request: the program's
        own assertion directives are harvested and folded into the
        config (with ``keep_deps`` so blame slicing has its dependency
        graph), which re-keys the workload — cached verdicts are valid
        only for the exact assertion set they were computed against.
        Memoized next to the analyze specs under a distinguished
        signature."""
        signature = self._spec_signature(request)
        if signature is not None:
            signature = signature + ("check",)
            memo = self._specs
            hit = memo.get(signature)
            if hit is not None:
                memo.move_to_end(signature)
                return hit
        spec, _ = self._spec_of(request)
        from ..assertions import AssertionSyntaxError, harvest_assertions
        from ..prolog.program import parse_program
        try:
            assertions = tuple(harvest_assertions(
                parse_program(spec["source"])))
        except AssertionSyntaxError as error:
            raise RequestError("bad assertion directive: %s" % error)
        base = (decode_config(spec["config"])
                if spec["config"] is not None else AnalysisConfig())
        config = _replace(base, assertions=assertions, keep_deps=True)
        query = (spec["query"][0], int(spec["query"][1]))
        key = make_key(spec["source"], query,
                       decode_input_types(spec["input_types"]), config,
                       bool(spec["baseline"]))
        spec = dict(spec)
        spec["config"] = encode_config(config)
        spec["check"] = True
        if signature is not None:
            memo[signature] = (spec, key)
            if len(memo) > 4096:
                memo.popitem(last=False)
        return spec, key

    async def _check(self, request: dict, want_slices: bool) -> dict:
        """Shared body of the ``check`` and ``slice`` ops: one cached
        payload (the encoded table plus its ``check`` section) serves
        both; they differ only in whether the blame slices travel back
        to the client."""
        spec, key = self._check_spec_of(request)
        outcome = await self._analyze(spec, key, True,
                                      self._timeout_of(request))
        payload = outcome.pop("payload", None) or {}
        check = payload.get("check") or {"verdicts": [], "slices": []}
        verdicts = check.get("verdicts", [])
        counts: Dict[str, int] = {}
        for verdict in verdicts:
            status = verdict.get("status", "?")
            counts[status] = counts.get(status, 0) + 1
        outcome["name"] = spec["name"]
        outcome["verdicts"] = verdicts
        outcome["counts"] = counts
        outcome["passed"] = counts.get("violated", 0) == 0
        outcome["check_fingerprint"] = check_fingerprint(check)
        if want_slices:
            outcome["slices"] = check.get("slices", [])
        if bool(request.get("payload", False)):
            outcome["payload"] = payload
        return outcome

    def _fingerprint(self, digest: str, payload: dict) -> str:
        memo = self._fingerprints
        fingerprint = memo.get(digest)
        if fingerprint is None:
            fingerprint = payload_fingerprint(payload)
            memo[digest] = fingerprint
            if len(memo) > 4096:
                memo.popitem(last=False)
        return fingerprint

    async def _analyze(self, spec: dict, key: CacheKey,
                       want_payload: bool,
                       timeout: Optional[float]) -> dict:
        start = time.perf_counter()
        self.stats.requests += 1
        digest = key.digest
        cached = True
        coalesced = False
        loop = asyncio.get_running_loop()
        # Memory probe inline (it is a lock + dict hit, cheaper than
        # an executor hop); only the disk fallback leaves the loop.
        # The inflight check below runs synchronously after any await,
        # so duplicates still coalesce; the only race left (a probe
        # going stale while its computation both finishes and leaves
        # the inflight map) costs one redundant — and identical —
        # analysis, never a wrong answer.
        payload = self.cache.get_memory(key)
        if payload is None:
            if self.cache.cache_dir is None:
                payload = self.cache.get(key)
            else:
                payload = await loop.run_in_executor(None,
                                                     self.cache.get, key)
        if payload is None:
            cached = False
            future = self._inflight.get(digest)
            if future is not None:
                coalesced = True
                self.stats.coalesced += 1
            else:
                if self._draining:
                    raise RequestError("server is draining",
                                       "shutting-down")
                if self._pending >= self.max_pending:
                    self.stats.rejected += 1
                    raise RequestError(
                        "queue full: %d analyses in flight "
                        "(max_pending=%d)" % (self._pending,
                                              self.max_pending),
                        "overloaded")
                future = loop.create_future()
                # A timed-out responder abandons the future; make sure
                # an eventual error on it is considered retrieved.
                future.add_done_callback(
                    lambda f: f.exception() if not f.cancelled()
                    else None)
                self._inflight[digest] = future
                self._pending += 1
                asyncio.ensure_future(self._run_spec(spec, key, future))
            try:
                payload = await asyncio.wait_for(asyncio.shield(future),
                                                 timeout)
            except asyncio.TimeoutError:
                # The computation is left running: it will finish,
                # populate the cache, and resolve any later riders.
                self.stats.timeouts += 1
                raise RequestError(
                    "analysis timed out after %.1fs (it continues in "
                    "the background; retry to pick up the cached "
                    "result)" % timeout, "timeout")
        seconds = time.perf_counter() - start
        self.stats.latencies.append(seconds)
        result = {
            "fingerprint": self._fingerprint(digest, payload),
            "key": digest,
            "cached": cached,
            "coalesced": coalesced,
            "seconds": round(seconds, 6),
        }
        if want_payload:
            result["payload"] = payload
        return result

    async def _run_spec(self, spec: dict, key: CacheKey,
                        future: "asyncio.Future") -> None:
        loop = asyncio.get_running_loop()
        try:
            executor = (self._pool.executor if self._pool is not None
                        else self._executor)
            _, payload, _ = await loop.run_in_executor(
                executor, _execute_spec, spec)
            # disk write off the event loop (ResultCache is locked)
            await loop.run_in_executor(None, self.cache.put, key,
                                       payload)
            self.stats.analyses_executed += 1
        except BaseException as error:
            if not future.done():
                future.set_exception(error)
            return
        finally:
            self._pending -= 1
            if self._inflight.get(key.digest) is future:
                del self._inflight[key.digest]
        if not future.done():
            future.set_result(payload)

    def _timeout_of(self, request: dict) -> Optional[float]:
        """Effective timeout: the server cap, lowered per request."""
        requested = request.get("timeout")
        if requested is None:
            return self.request_timeout
        requested = float(requested)
        if self.request_timeout is None:
            return requested
        return min(requested, self.request_timeout)

    # -- ops -----------------------------------------------------------------

    async def _op_analyze(self, request: dict) -> dict:
        spec, key = self._spec_of(request)
        return await self._analyze(spec, key,
                                   bool(request.get("payload", True)),
                                   self._timeout_of(request))

    async def _op_check(self, request: dict) -> dict:
        """Assertion verdicts for the workload's own ``assert_*``
        directives; the analysis runs (or is served cached) with the
        assertions folded into its config."""
        return await self._check(request, want_slices=False)

    async def _op_slice(self, request: dict) -> dict:
        """Like ``check``, plus the blame slices for every violated
        assertion — the same cached payload serves both ops."""
        return await self._check(request, want_slices=True)

    async def _op_batch(self, request: dict) -> dict:
        """Many analyze requests in one round trip, answered when all
        are done; duplicates coalesce exactly like separate clients."""
        raw_jobs = request.get("jobs")
        if raw_jobs is None and request.get("benchmarks") is not None:
            raw_jobs = [{"benchmark": name}
                        for name in request["benchmarks"]]
        if not isinstance(raw_jobs, list) or not raw_jobs:
            raise RequestError("'batch' needs a non-empty 'jobs' or "
                               "'benchmarks' list")
        want_payload = bool(request.get("payload", False))
        timeout = self._timeout_of(request)
        prepared = [self._spec_of(job) for job in raw_jobs]

        async def one(spec: dict, key: CacheKey) -> dict:
            try:
                result = await self._analyze(spec, key, want_payload,
                                             timeout)
            except RequestError as error:
                return {"name": spec["name"], "ok": False,
                        "error": str(error), "code": error.code}
            result["name"] = spec["name"]
            result["ok"] = True
            return result

        jobs = await asyncio.gather(*(one(spec, key)
                                      for spec, key in prepared))
        return {"jobs": list(jobs)}

    async def _op_seed(self, request: dict) -> dict:
        """Replication push: store an already-encoded payload under
        this workload's key in the *memory* tier.  Cheap by design —
        no analysis, no disk write — so a home shard's fresh result
        can be fanned out to its replicas' warm memory (the router
        does this when started with ``--replicate R``).

        Two request forms: the original spec form (``source``/
        ``benchmark`` + friends, re-deriving the key here proves the
        pushed payload matches the workload) and a raw ``key`` object
        (``CacheKey.to_obj`` shape) — the anti-entropy repair path,
        where the router re-seeds an entry it fetched from a healthy
        replica and has no spec to rebuild the key from."""
        payload = request.get("payload")
        if not isinstance(payload, dict):
            raise RequestError("'seed' needs a 'payload' object")
        raw_key = request.get("key")
        if raw_key is not None:
            if not isinstance(raw_key, dict):
                raise RequestError("'key' must be a CacheKey object")
            try:
                key = CacheKey.from_obj(raw_key)
            except (TypeError, ValueError, KeyError, IndexError):
                raise RequestError("malformed 'key' object")
            name = str(request.get("name")
                       or "%s/%d" % tuple(key.query))
        else:
            spec, key = self._spec_of(request)
            name = spec["name"]
        self.cache.seed(key, payload)
        self.stats.seeds += 1
        return {"seeded": True, "key": key.digest, "name": name}

    async def _op_digest(self, request: dict) -> dict:
        """Memory-tier inventory: every resident ``(digest,
        program_hash)`` pair.  Deliberately cheap (a lock and a list
        copy) — the router's anti-entropy pass calls this on every
        live shard each cycle to find replicas that lost seeded
        entries to restarts, evictions, or ``invalidate``."""
        entries = self.cache.memory_digests()
        return {"entries": [{"digest": digest, "program": program}
                            for digest, program in entries],
                "count": len(entries)}

    async def _op_fetch(self, request: dict) -> dict:
        """Memory-tier lookup by digest: the payload *and* its full
        key object, so the router can ``seed`` the entry into another
        shard without knowing the originating request."""
        digest = request.get("digest")
        if not isinstance(digest, str):
            raise RequestError("'fetch' needs a 'digest' string")
        entry = self.cache.get_by_digest(digest)
        if entry is None:
            raise RequestError("digest %s is not in the memory tier"
                               % digest, "not-found")
        key, payload = entry
        return {"digest": digest, "key": key.to_obj(),
                "payload": payload}

    async def _op_stats(self, request: dict) -> dict:
        from ..typegraph import arena, opcache
        cache_stats = self.cache.stats
        hits = cache_stats.hits
        lookups = hits + cache_stats.misses
        opcache_hits, opcache_misses = opcache.snapshot()
        loop = asyncio.get_running_loop()
        entries = await loop.run_in_executor(None, len, self.cache)
        return {
            "pid": os.getpid(),
            "uptime": round(time.time() - self.stats.started, 3),
            "draining": self._draining,
            "workers": self.workers,
            "queue_depth": self._pending,
            "max_pending": self.max_pending,
            "requests": self.stats.requests,
            "analyses_executed": self.stats.analyses_executed,
            "coalesced": self.stats.coalesced,
            "rejected": self.stats.rejected,
            "timeouts": self.stats.timeouts,
            "errors": self.stats.errors,
            "seeds": self.stats.seeds,
            "faults": (None if self.faults is None
                       else self.faults.describe()),
            "cache": {
                "entries": entries,
                "dir": self.cache.cache_dir,
                "hits": hits,
                "memory_hits": cache_stats.memory_hits,
                "disk_hits": cache_stats.disk_hits,
                "misses": cache_stats.misses,
                "puts": cache_stats.puts,
                "seeds": cache_stats.seeds,
                "evictions": cache_stats.evictions,
                "invalidations": cache_stats.invalidations,
                "hit_rate": (round(hits / lookups, 4) if lookups
                             else None),
            },
            "opcache": {"enabled": opcache.enabled(),
                        "hits": opcache_hits,
                        "misses": opcache_misses},
            "arena": arena.stats(),
            "latency": self.stats.latency_summary(),
        }

    async def _op_cache_info(self, request: dict) -> dict:
        stats = await self._op_stats(request)
        return stats["cache"]

    async def _op_invalidate(self, request: dict) -> dict:
        if request.get("program_hash") is not None:
            prog_hash = str(request["program_hash"])
        elif request.get("source") is not None:
            prog_hash = program_hash(str(request["source"]))
        else:
            raise RequestError("'invalidate' needs 'source' or "
                               "'program_hash'")
        loop = asyncio.get_running_loop()
        invalidated = await loop.run_in_executor(
            None, self.cache.invalidate_program, prog_hash)
        return {"program_hash": prog_hash, "invalidated": invalidated}

    async def _op_ping(self, request: dict) -> dict:
        return {"pong": True, "pid": os.getpid(),
                "draining": self._draining}

    async def _op_shutdown(self, request: dict) -> dict:
        draining = self._pending
        self._draining = True
        loop = asyncio.get_running_loop()
        # Let the response flush before the listener goes away.
        loop.call_soon(self.trigger_shutdown)
        return {"draining": draining}

    _OPS = {
        "analyze": _op_analyze,
        "check": _op_check,
        "slice": _op_slice,
        "batch": _op_batch,
        "seed": _op_seed,
        "digest": _op_digest,
        "fetch": _op_fetch,
        "stats": _op_stats,
        "cache-info": _op_cache_info,
        "invalidate": _op_invalidate,
        "ping": _op_ping,
        "shutdown": _op_shutdown,
    }


# -- warm-up -----------------------------------------------------------------

async def _warm(server: AnalysisServer, names) -> None:
    """Pre-analyze benchmarks so the first real request runs warm."""
    from ..benchprogs import benchmark_names
    if [name.lower() for name in names] == ["all"]:
        names = benchmark_names()
    for name in names:
        spec, key = server._spec_of({"benchmark": name})
        await server._analyze(spec, key, want_payload=False,
                              timeout=server.request_timeout)
        print("warmed %s" % name, file=sys.stderr)


# -- CLI ---------------------------------------------------------------------

def serve_main(argv) -> int:
    """``repro serve``: run the daemon until shutdown."""
    parser = argparse.ArgumentParser(
        prog="repro serve",
        description="Long-lived analysis server speaking "
                    "newline-delimited JSON; keeps intern tables, "
                    "arenas, the opcache, and the result cache warm "
                    "across requests.")
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=DEFAULT_PORT,
                        help="TCP port (0 picks an ephemeral one; the "
                             "chosen port is printed on the ready "
                             "line; default %d)" % DEFAULT_PORT)
    parser.add_argument("--cache-dir", default=None,
                        help="on-disk result cache directory "
                             "(default: in-memory only)")
    parser.add_argument("--workers", type=int, default=0,
                        help="analysis worker processes; 0 (default) "
                             "runs analyses on one dedicated thread "
                             "in this process")
    parser.add_argument("--max-pending", type=int, default=64,
                        help="in-flight analysis bound before "
                             "'overloaded' rejections (default 64)")
    parser.add_argument("--timeout", type=float, default=300.0,
                        help="per-request analysis timeout in seconds "
                             "(default 300; 0 disables)")
    parser.add_argument("--max-memory-entries", type=int, default=256,
                        help="in-memory result cache size (default 256)")
    parser.add_argument("--warm", metavar="NAMES", default=None,
                        help="comma-separated benchmarks (or 'all') to "
                             "pre-analyze before accepting traffic")
    parser.add_argument("--faults", metavar="SPEC", default=None,
                        help="deterministic fault-injection plan: "
                             "inline JSON or @file (see "
                             "repro.service.faults; default: the "
                             "REPRO_FAULTS environment variable)")
    args = parser.parse_args(argv)

    from .faults import FaultSpecError, faults_from_env, parse_fault_spec
    try:
        faults = (parse_fault_spec(args.faults) if args.faults
                  else faults_from_env())
    except FaultSpecError as error:
        parser.error("--faults: %s" % error)
    if faults is not None:
        print("repro serve: fault injection ACTIVE: %s"
              % json.dumps(faults.to_obj()), file=sys.stderr)

    cache = ResultCache(args.cache_dir,
                        max_memory_entries=args.max_memory_entries)
    server = AnalysisServer(
        host=args.host, port=args.port, cache=cache,
        workers=args.workers, max_pending=args.max_pending,
        request_timeout=(None if not args.timeout else args.timeout),
        faults=faults)

    async def run() -> None:
        await server.start()
        if args.warm:
            await _warm(server, [n.strip().upper()
                                 for n in args.warm.split(",")])
        # The ready line is a stable interface: tests and the load
        # generator parse host/port out of it.
        print("repro serve listening on %s:%d (pid %d, workers=%d)"
              % (server.host, server.port, os.getpid(), args.workers),
              flush=True)
        loop = asyncio.get_running_loop()
        try:
            import signal
            for signum in (signal.SIGINT, signal.SIGTERM):
                loop.add_signal_handler(signum, server.trigger_shutdown)
        except (ImportError, NotImplementedError):  # non-POSIX loops
            pass
        await server.serve_until_shutdown()
        print("repro serve: drained and stopped", file=sys.stderr)

    try:
        asyncio.run(run())
    except KeyboardInterrupt:
        pass
    return 0


if __name__ == "__main__":
    sys.exit(serve_main(sys.argv[1:]))
