"""Content-addressed analysis result cache.

A :class:`ResultCache` stores serialized analysis results keyed by
:class:`CacheKey` — the content hash of everything a run depends on:
``(program_hash, query, input_types, config_hash, domain, format)``.
Two layers:

* an **in-memory LRU** (bounded by ``max_memory_entries``) serving the
  hot keys of a long-lived service process;
* an optional **on-disk store** under ``cache_dir`` that persists
  across processes, laid out as
  ``objects/<program_hash>/<key_digest>.json`` so all results for one
  program version can be listed (promotion) or dropped (invalidation)
  without touching the rest of the store.

Payloads are the JSON-ready objects of :mod:`repro.service.serialize`;
the cache never decodes them — it is a plain content-addressed blob
store with an index by program hash.

Concurrency model (PR 5's server hangs many readers and writers off
one instance and many *processes* off one ``cache_dir``):

* **Within a process** the memory layer and the stats counters are
  guarded by an internal lock, so any number of threads may ``get`` /
  ``put`` / ``invalidate`` concurrently.
* **Across processes** safety rests on the filesystem: writes land via
  tempfile + atomic ``os.replace`` (a reader sees the old record or
  the new one, never a torn one), unreadable/partial records count as
  misses, and every directory listing / unlink tolerates entries
  vanishing underneath it.  A ``put`` whose program directory is
  concurrently removed (``invalidate_program`` / ``clear`` in another
  process) recreates the directory and retries once.
"""

from __future__ import annotations

import functools
import json
import os
import tempfile
import threading
from collections import OrderedDict
from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Sequence, Tuple, Union

from ..fixpoint.engine import AnalysisConfig
from ..prolog.program import PredId, Program
from ..typegraph.grammar import Grammar
from .serialize import (FORMAT_VERSION, canonical_json, config_hash,
                        content_hash, grammar_content_hash, program_hash)

__all__ = ["CacheKey", "CacheStats", "ResultCache", "make_key"]


@dataclass(frozen=True)
class CacheKey:
    """Everything an analysis run's outcome depends on."""

    program_hash: str
    query: PredId
    # canonical JSON text, grammar specs as content hashes; None = all Any
    input_types_key: Optional[str]
    config_hash: str
    domain: str
    version: int = FORMAT_VERSION

    @functools.cached_property
    def digest(self) -> str:
        return content_hash({
            "program": self.program_hash,
            "query": list(self.query),
            "input_types": self.input_types_key,
            "config": self.config_hash,
            "domain": self.domain,
            "version": self.version,
        })

    def with_program(self, new_program_hash: str) -> "CacheKey":
        """The same workload against another program version — the
        re-keying primitive behind incremental promotion."""
        return CacheKey(new_program_hash, self.query,
                        self.input_types_key, self.config_hash,
                        self.domain, self.version)

    def to_obj(self) -> dict:
        return {
            "program_hash": self.program_hash,
            "query": list(self.query),
            "input_types_key": self.input_types_key,
            "config_hash": self.config_hash,
            "domain": self.domain,
            "version": self.version,
        }

    @classmethod
    def from_obj(cls, data: dict) -> "CacheKey":
        return cls(
            program_hash=data["program_hash"],
            query=(data["query"][0], int(data["query"][1])),
            input_types_key=data.get("input_types_key"),
            config_hash=data["config_hash"],
            domain=data["domain"],
            version=int(data.get("version", FORMAT_VERSION)),
        )


def make_key(source: Union[str, Program], query: PredId,
             input_types: Optional[Sequence[Union[str, Grammar]]] = None,
             config: Optional[AnalysisConfig] = None,
             baseline: bool = False) -> CacheKey:
    """Cache key for one :func:`repro.analyze` workload.

    Grammar-valued input types enter the key by their (memoized)
    content hash rather than a full re-encoding — interned grammars
    shared across many jobs are hashed once per process."""
    return CacheKey(
        program_hash=program_hash(source),
        query=(query[0], int(query[1])),
        input_types_key=(None if input_types is None
                         else canonical_json([
                             spec if isinstance(spec, str)
                             else ["g", grammar_content_hash(spec)]
                             for spec in input_types])),
        config_hash=config_hash(config),
        domain="trivial" if baseline else "type",
    )


@dataclass
class CacheStats:
    hits: int = 0
    memory_hits: int = 0
    disk_hits: int = 0
    misses: int = 0
    puts: int = 0
    seeds: int = 0
    evictions: int = 0
    invalidations: int = 0


class ResultCache:
    """LRU-over-disk store for serialized analysis results.

    ``fsync=True`` (or ``REPRO_CACHE_FSYNC=1``) additionally fsyncs
    each record file before the atomic rename and the program
    directory after it, so a committed record survives a machine
    crash, not just a process crash.  Off by default: the atomic
    rename already guarantees readers never see a torn record, and
    the cache is a cache — a lost record is a recomputation, not
    corruption.
    """

    def __init__(self, cache_dir: Optional[Union[str, os.PathLike]] = None,
                 max_memory_entries: int = 256,
                 fsync: Optional[bool] = None) -> None:
        if max_memory_entries < 1:
            raise ValueError("max_memory_entries must be >= 1")
        self.cache_dir = None if cache_dir is None else str(cache_dir)
        self.max_memory_entries = max_memory_entries
        self.fsync = (os.environ.get("REPRO_CACHE_FSYNC") == "1"
                      if fsync is None else bool(fsync))
        self._memory: "OrderedDict[str, Tuple[CacheKey, dict]]" = \
            OrderedDict()
        self.stats = CacheStats()
        #: guards the memory layer and the stats counters; disk I/O
        #: happens outside it (atomic-rename protocol, see module doc).
        self._lock = threading.RLock()

    # -- paths ---------------------------------------------------------------

    def _objects_dir(self) -> str:
        assert self.cache_dir is not None
        return os.path.join(self.cache_dir, "objects")

    def _program_dir(self, prog_hash: str) -> str:
        return os.path.join(self._objects_dir(), prog_hash)

    def _entry_path(self, key: CacheKey) -> str:
        return os.path.join(self._program_dir(key.program_hash),
                            key.digest + ".json")

    # -- core get/put --------------------------------------------------------

    def get_memory(self, key: CacheKey) -> Optional[dict]:
        """Probe the in-memory layer only — a cheap, non-blocking
        lookup the server's event loop can afford to run inline.  A
        hit counts toward the stats; a miss counts nothing (the caller
        is expected to fall through to :meth:`get`, which does the
        full accounting)."""
        digest = key.digest
        with self._lock:
            entry = self._memory.get(digest)
            if entry is None:
                return None
            self._memory.move_to_end(digest)
            self.stats.hits += 1
            self.stats.memory_hits += 1
            return entry[1]

    def get(self, key: CacheKey) -> Optional[dict]:
        """The stored payload, or None.  Disk hits are promoted into
        the memory layer."""
        digest = key.digest
        with self._lock:
            entry = self._memory.get(digest)
            if entry is not None:
                self._memory.move_to_end(digest)
                self.stats.hits += 1
                self.stats.memory_hits += 1
                return entry[1]
        if self.cache_dir is not None:
            path = self._entry_path(key)
            try:
                with open(path, "r", encoding="utf-8") as handle:
                    record = json.load(handle)
                payload = record["payload"]
            except (OSError, ValueError, KeyError, TypeError):
                payload = None  # unreadable/truncated record: a miss
            if payload is not None:
                with self._lock:
                    self._remember(key, payload)
                    self.stats.hits += 1
                    self.stats.disk_hits += 1
                return payload
        with self._lock:
            self.stats.misses += 1
        return None

    def put(self, key: CacheKey, payload: dict) -> None:
        """Store a payload under ``key`` in both layers.  Disk writes
        are atomic (tempfile + rename), so a crashed writer never
        leaves a half-written object behind and a concurrent reader
        never observes a torn record."""
        with self._lock:
            self._remember(key, payload)
            self.stats.puts += 1
        if self.cache_dir is None:
            return
        self._write_disk(key, payload)

    def seed(self, key: CacheKey, payload: dict) -> None:
        """Store a payload in the *memory* layer only — the replication
        primitive.  A replica seeded with another shard's result serves
        it as a memory hit after failover; the disk layer is left to
        the home shard (the store is shared, a second write would be
        redundant I/O for the same bytes)."""
        with self._lock:
            self._remember(key, payload)
            self.stats.seeds += 1

    def memory_digests(self) -> List[Tuple[str, str]]:
        """``(digest, program_hash)`` for every memory-tier entry —
        the cheap inventory behind the server's ``digest`` op, which
        the router's anti-entropy pass compares across replicas.  A
        lock and a list copy; never touches disk."""
        with self._lock:
            return [(digest, key.program_hash)
                    for digest, (key, _) in self._memory.items()]

    def get_by_digest(self, digest: str) -> Optional[Tuple[CacheKey, dict]]:
        """Memory-tier lookup by key digest (no :class:`CacheKey` in
        hand) — the fetch half of anti-entropy repair.  Does not count
        as a hit or bump LRU recency: repair reads are bookkeeping,
        not traffic."""
        with self._lock:
            entry = self._memory.get(digest)
            return None if entry is None else entry

    def _write_disk(self, key: CacheKey, payload: dict) -> None:
        record = {"key": key.to_obj(), "payload": payload}
        text = json.dumps(record)
        directory = self._program_dir(key.program_hash)
        # Two rounds: a concurrent invalidate_program/clear may remove
        # the program directory between makedirs and the rename.
        for attempt in (0, 1):
            os.makedirs(directory, exist_ok=True)
            tmp_path = None
            try:
                fd, tmp_path = tempfile.mkstemp(dir=directory,
                                                suffix=".tmp")
                with os.fdopen(fd, "w", encoding="utf-8") as handle:
                    handle.write(text)
                    if self.fsync:
                        handle.flush()
                        os.fsync(handle.fileno())
                os.replace(tmp_path, self._entry_path(key))
                if self.fsync:
                    self._fsync_dir(directory)
                return
            except FileNotFoundError:
                # directory vanished underneath us; retry once
                if tmp_path is not None:
                    try:
                        os.unlink(tmp_path)
                    except OSError:
                        pass
                if attempt:
                    raise
            except BaseException:
                if tmp_path is not None:
                    try:
                        os.unlink(tmp_path)
                    except OSError:
                        pass
                raise

    @staticmethod
    def _fsync_dir(directory: str) -> None:
        """Durably commit a rename by fsyncing its directory (best
        effort — not every platform allows opening a directory)."""
        try:
            fd = os.open(directory, os.O_RDONLY)
        except OSError:
            return
        try:
            os.fsync(fd)
        except OSError:
            pass
        finally:
            os.close(fd)

    def _remember(self, key: CacheKey, payload: dict) -> None:
        digest = key.digest
        self._memory[digest] = (key, payload)
        self._memory.move_to_end(digest)
        while len(self._memory) > self.max_memory_entries:
            self._memory.popitem(last=False)
            self.stats.evictions += 1

    # -- program-level index -------------------------------------------------

    def keys_for_program(self, prog_hash: str) -> List[CacheKey]:
        """All stored keys for one program version (both layers)."""
        keys: Dict[str, CacheKey] = {}
        with self._lock:
            memory_items = list(self._memory.items())
        for digest, (key, _) in memory_items:
            if key.program_hash == prog_hash:
                keys[digest] = key
        for key, _ in self._iter_disk(prog_hash):
            keys.setdefault(key.digest, key)
        return list(keys.values())

    def _iter_disk(self, prog_hash: str) -> Iterator[Tuple[CacheKey, dict]]:
        if self.cache_dir is None:
            return
        directory = self._program_dir(prog_hash)
        try:
            names = sorted(os.listdir(directory))
        except OSError:
            return
        for name in names:
            if not name.endswith(".json"):
                continue
            try:
                with open(os.path.join(directory, name), "r",
                          encoding="utf-8") as handle:
                    record = json.load(handle)
                yield CacheKey.from_obj(record["key"]), record["payload"]
            except (OSError, ValueError, KeyError):
                continue

    def entries_for_program(self,
                            prog_hash: str) -> List[Tuple[CacheKey, dict]]:
        """(key, payload) pairs stored for one program version."""
        seen: Dict[str, Tuple[CacheKey, dict]] = {}
        with self._lock:
            memory_items = list(self._memory.items())
        for digest, (key, payload) in memory_items:
            if key.program_hash == prog_hash:
                seen[digest] = (key, payload)
        for key, payload in self._iter_disk(prog_hash):
            seen.setdefault(key.digest, (key, payload))
        return list(seen.values())

    # -- invalidation --------------------------------------------------------

    def invalidate(self, key: CacheKey) -> bool:
        """Drop one entry from both layers; True if anything existed."""
        with self._lock:
            existed = self._memory.pop(key.digest, None) is not None
        if self.cache_dir is not None:
            try:
                os.unlink(self._entry_path(key))
                existed = True
            except OSError:
                pass
        if existed:
            with self._lock:
                self.stats.invalidations += 1
        return existed

    def invalidate_program(self, prog_hash: str) -> int:
        """Drop every entry for one program version; returns a count."""
        dropped = 0
        for key in self.keys_for_program(prog_hash):
            if self.invalidate(key):
                dropped += 1
        return dropped

    def flush(self) -> int:
        """Write every in-memory entry through to disk (idempotent;
        entries already on disk are skipped).  This is what a draining
        server calls on shutdown so results computed while the store
        was busy — or before a ``cache_dir`` existed — survive the
        process; returns the number of records written."""
        if self.cache_dir is None:
            return 0
        with self._lock:
            entries = list(self._memory.values())
        written = 0
        for key, payload in entries:
            if not os.path.exists(self._entry_path(key)):
                self._write_disk(key, payload)
                written += 1
        return written

    def clear(self) -> None:
        with self._lock:
            self._memory.clear()
        if self.cache_dir is None:
            return
        try:
            program_dirs = os.listdir(self._objects_dir())
        except OSError:
            return
        for prog_hash in program_dirs:
            directory = self._program_dir(prog_hash)
            try:
                for name in os.listdir(directory):
                    try:
                        os.unlink(os.path.join(directory, name))
                    except OSError:
                        pass
                os.rmdir(directory)
            except OSError:
                pass

    def __len__(self) -> int:
        """Number of distinct stored entries across both layers."""
        with self._lock:
            digests = set(self._memory)
        if self.cache_dir is not None:
            try:
                program_dirs = os.listdir(self._objects_dir())
            except OSError:
                program_dirs = []
            for prog_hash in program_dirs:
                try:
                    names = os.listdir(self._program_dir(prog_hash))
                except OSError:
                    continue
                digests.update(name[:-5] for name in names
                               if name.endswith(".json"))
        return len(digests)
