"""Reusable newline-delimited JSON transport for the service tier.

Every process in the serving stack — the ``repro serve`` shard daemon,
the ``repro router`` front door, the blocking :class:`ServeClient`,
and the load generator — speaks the same wire protocol: one JSON
object per ``\\n``-terminated line over TCP, strictly request/response
per connection.  This module owns that protocol once, extracted from
``service/server.py``/``client.py`` so the router did not have to grow
a third copy:

* **framing** — :func:`encode_message` / :func:`decode_message` and
  the shared :data:`LINE_LIMIT`;
* **envelopes** — :func:`ok_envelope` / :func:`error_envelope`, the
  ``{"id", "ok", "result" | "error"+"code"}`` response shape;
* **connection lifecycle** — :class:`LineServer` (asyncio accept loop,
  per-connection read/dispatch/write cycle, oversized-line recovery,
  connection tracking for graceful drain), :class:`AsyncLineConnection`
  (one pooled upstream connection of the router), and
  :class:`BlockingLineConnection` (the synchronous client substrate,
  with retry-with-backoff connection establishment).

Latency note: asyncio enables ``TCP_NODELAY`` on every TCP transport
it creates; :class:`BlockingLineConnection` sets it explicitly so the
blocking side never trades request/response latency against Nagle.
"""

from __future__ import annotations

import asyncio
import json
import socket
import time
from typing import Any, Awaitable, Callable, Optional, Union

__all__ = ["LINE_LIMIT", "ProtocolError", "ConnectError",
           "encode_message", "decode_message",
           "ok_envelope", "error_envelope",
           "LineServer", "AsyncLineConnection", "BlockingLineConnection"]

#: Maximum request/response line length (program sources travel
#: inline, so this is deliberately generous: 16 MiB).
LINE_LIMIT = 1 << 24


class ProtocolError(Exception):
    """A line that is not a valid protocol message."""


class ConnectError(ConnectionError):
    """Connection establishment failed (after any configured retries).

    Carries a message that says *what to do about it* — the bare
    ``ConnectionRefusedError`` it replaces told callers racing a
    still-booting server nothing.
    """


# -- framing -----------------------------------------------------------------

def encode_message(obj: Any) -> bytes:
    """One protocol message as a ``\\n``-terminated JSON line."""
    return json.dumps(obj).encode("utf-8") + b"\n"


def decode_message(line: Union[bytes, str]) -> dict:
    """Parse one line into a message object.

    Raises :class:`ProtocolError` on malformed JSON or a non-object
    payload — the two failure shapes every endpoint must answer the
    same way (``code="bad-request"``, connection stays usable).
    """
    try:
        message = json.loads(line)
    except ValueError:
        raise ProtocolError("request is not valid JSON")
    if not isinstance(message, dict):
        raise ProtocolError("request must be a JSON object")
    return message


# -- response envelopes ------------------------------------------------------

def ok_envelope(request_id: Any, result: Any) -> dict:
    return {"id": request_id, "ok": True, "result": result}


def error_envelope(request_id: Any, message: str,
                   code: str = "bad-request") -> dict:
    return {"id": request_id, "ok": False, "error": message,
            "code": code}


# -- asyncio server side -----------------------------------------------------

#: A request handler: raw line in, response out.  Returning ``bytes``
#: means "already framed, write verbatim" — the router's passthrough
#: path forwards shard responses without re-serializing them.
LineHandler = Callable[[bytes], Awaitable[Union[dict, bytes, None]]]


class LineServer:
    """An asyncio TCP server running ``handler`` once per request line.

    Owns the accept loop, the per-connection read/dispatch/write
    cycle, blank-line tolerance, oversized-line recovery (answer once,
    close — the stream can no longer be re-framed), and the set of
    open client transports a draining process must hang up on
    (``Server.wait_closed`` waits for every connection handler from
    Python 3.12.1, and a handler parked in ``readline`` on an idle
    client would otherwise block shutdown forever).

    An optional ``faults`` plan (:class:`repro.service.faults.FaultPlan`)
    hooks the three lifecycle points — accept, request-read,
    response-write — so chaos tests and the ``--faults`` flag can
    inject deterministic transport failures without touching the
    handler.
    """

    def __init__(self, handler: LineHandler, host: str = "127.0.0.1",
                 port: int = 0, limit: int = LINE_LIMIT,
                 faults: Optional[Any] = None) -> None:
        self.handler = handler
        self.host = host
        self.port = port
        self.limit = limit
        self.faults = faults
        self.connections: set = set()
        self._server: Optional[asyncio.AbstractServer] = None

    async def start(self) -> None:
        """Bind and accept; ``self.port`` holds the actual port
        afterwards (pass ``port=0`` for an ephemeral one)."""
        self._server = await asyncio.start_server(
            self._handle_connection, self.host, self.port,
            limit=self.limit)
        self.port = self._server.sockets[0].getsockname()[1]

    async def _handle_connection(self, reader: asyncio.StreamReader,
                                 writer: asyncio.StreamWriter) -> None:
        faults = self.faults
        self.connections.add(writer)
        try:
            if faults is not None and faults.on_accept():
                return
            while True:
                try:
                    line = await reader.readline()
                except ValueError:
                    # Line beyond the stream limit: readline wraps
                    # LimitOverrunError in ValueError.
                    writer.write(encode_message(error_envelope(
                        None, "request line exceeds %d bytes"
                        % self.limit)))
                    await writer.drain()
                    break
                if not line:
                    break
                if not line.strip():
                    continue
                if faults is not None:
                    dropped = False
                    for kind, delay in faults.on_request():
                        if kind == "crash-process":
                            faults.crash()
                        elif kind == "delay-read":
                            await asyncio.sleep(delay)
                        elif kind == "drop-connection":
                            dropped = True
                    if dropped:
                        break
                response = await self.handler(line)
                if response is None:
                    continue
                if not isinstance(response, bytes):
                    response = encode_message(response)
                if faults is not None:
                    delay, truncate = faults.on_response()
                    if delay:
                        await asyncio.sleep(delay)
                    if truncate:
                        # Half a line, then hang up: the torn write a
                        # crashing peer leaves behind.
                        writer.write(response[:max(1, len(response) // 2)])
                        await writer.drain()
                        break
                writer.write(response)
                await writer.drain()
        except (ConnectionResetError, BrokenPipeError):
            pass
        finally:
            self.connections.discard(writer)
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError, OSError):
                pass

    # -- lifecycle -----------------------------------------------------------

    def close(self) -> None:
        """Stop accepting new connections (established ones live on)."""
        if self._server is not None:
            self._server.close()

    def hang_up(self) -> None:
        """Close every open client transport, unblocking handlers
        parked in ``readline`` so :meth:`wait_closed` can finish."""
        for writer in list(self.connections):
            writer.close()

    async def wait_closed(self) -> None:
        if self._server is not None:
            await self._server.wait_closed()


# -- asyncio client side (router -> shard) -----------------------------------

class AsyncLineConnection:
    """One upstream protocol connection inside an event loop.

    Strictly one request in flight at a time — callers that need
    concurrency hold several (the router's per-shard pool does).
    """

    def __init__(self, reader: asyncio.StreamReader,
                 writer: asyncio.StreamWriter) -> None:
        self.reader = reader
        self.writer = writer

    @classmethod
    async def open(cls, host: str, port: int,
                   limit: int = LINE_LIMIT) -> "AsyncLineConnection":
        reader, writer = await asyncio.open_connection(host, port,
                                                       limit=limit)
        return cls(reader, writer)

    async def request_raw(self, line: bytes) -> bytes:
        """One round trip of pre-framed bytes; the response line comes
        back verbatim (framing included).  Raises ``ConnectionError``
        when the peer hangs up mid-cycle."""
        self.writer.write(line)
        await self.writer.drain()
        response = await self.reader.readline()
        if not response:
            raise ConnectError("peer closed the connection")
        if not response.endswith(b"\n"):  # truncated: peer died mid-write
            raise ConnectError("peer hung up mid-response")
        return response

    async def request(self, message: dict) -> dict:
        return decode_message(await self.request_raw(
            encode_message(message)))

    def close(self) -> None:
        self.writer.close()

    async def wait_closed(self) -> None:
        try:
            await self.writer.wait_closed()
        except (ConnectionResetError, BrokenPipeError, OSError):
            pass


# -- blocking client side ----------------------------------------------------

class BlockingLineConnection:
    """Synchronous protocol connection: the :class:`ServeClient`
    substrate and the load generator's inner loop.

    ``connect`` retries with exponential backoff — callers that spawn
    a server and race its socket (``spawn_server`` followed by a first
    request) get a grace window instead of a bare
    ``ConnectionRefusedError``, and a clear :class:`ConnectError`
    when the server really is not there.

    Pass ``endpoints=[(host, port), ...]`` instead of a single
    ``host``/``port`` to target a redundant fleet front door: each
    connect attempt walks the list (starting at the endpoint that last
    worked) and latches onto the first reachable one; :meth:`rotate`
    moves the preference along after a mid-request transport failure,
    so the next connect tries a different router first.  With one
    endpoint the behavior — including the error message — is exactly
    the single-address form.
    """

    def __init__(self, host: Optional[str] = None,
                 port: Optional[int] = None,
                 timeout: Optional[float] = 120.0,
                 endpoints: Optional[list] = None) -> None:
        if endpoints is not None:
            parsed = [(str(h), int(p)) for h, p in endpoints]
            if not parsed:
                raise ValueError("endpoints must be non-empty")
        else:
            if host is None or port is None:
                raise ValueError("give host and port, or endpoints=")
            parsed = [(str(host), int(port))]
        self.endpoints = parsed
        self._endpoint_index = 0
        self.host, self.port = parsed[0]
        self.timeout = timeout
        self._sock: Optional[socket.socket] = None
        self._file = None

    @property
    def connected(self) -> bool:
        return self._sock is not None

    def rotate(self) -> None:
        """Prefer the next endpoint on the next connect — the caller's
        failover hook after a mid-request transport error."""
        if len(self.endpoints) > 1:
            self._endpoint_index = ((self._endpoint_index + 1)
                                    % len(self.endpoints))
            self.host, self.port = self.endpoints[self._endpoint_index]

    def connect(self, retries: int = 0, backoff: float = 0.05,
                max_backoff: float = 1.0) -> None:
        """Establish the connection, retrying ``retries`` times with
        exponential backoff (``backoff``, doubling, capped at
        ``max_backoff`` seconds) on refusal/unreachability.  Every
        retry pass walks all configured endpoints once."""
        if self._sock is not None:
            return
        delay = backoff
        last_error: Optional[Exception] = None
        count = len(self.endpoints)
        for attempt in range(retries + 1):
            for step in range(count):
                index = (self._endpoint_index + step) % count
                host, port = self.endpoints[index]
                try:
                    sock = socket.create_connection(
                        (host, port), timeout=self.timeout)
                except OSError as error:
                    last_error = error
                    continue
                sock.setsockopt(socket.IPPROTO_TCP,
                                socket.TCP_NODELAY, 1)
                self._sock = sock
                self._file = sock.makefile("rwb")
                self._endpoint_index = index
                self.host, self.port = host, port
                return
            if attempt < retries:
                time.sleep(delay)
                delay = min(delay * 2, max_backoff)
        if count == 1:
            raise ConnectError(
                "no server listening at %s:%d after %d attempt(s): %s "
                "— is it still starting?  (spawn_server parses the "
                "ready line; wait_for_server polls ping)"
                % (self.host, self.port, retries + 1, last_error))
        raise ConnectError(
            "no server listening at any of %s after %d attempt(s): %s"
            % (", ".join("%s:%d" % e for e in self.endpoints),
               retries + 1, last_error))

    def round_trip(self, message: dict) -> dict:
        """One request/response cycle.  Raises ``ConnectionError`` on
        transport failure (the connection is closed and may be
        re-``connect``-ed), :class:`ProtocolError` on garbage."""
        if self._sock is None:
            self.connect()
        try:
            self._file.write(encode_message(message))
            self._file.flush()
            raw = self._file.readline()
        except OSError as error:
            self.close()
            raise ConnectError("connection to %s:%d failed: %s"
                               % (self.host, self.port, error)) from None
        if not raw:
            self.close()
            raise ConnectError("server at %s:%d closed the connection"
                               % (self.host, self.port))
        if not raw.endswith(b"\n"):
            # A partial line means the peer died mid-write; surface it
            # as a transport failure, never as (unparseable) data.
            self.close()
            raise ConnectError("server at %s:%d hung up mid-response"
                               % (self.host, self.port))
        return decode_message(raw)

    def close(self) -> None:
        if self._file is not None:
            try:
                self._file.close()
            except OSError:
                pass
            self._file = None
        if self._sock is not None:
            try:
                self._sock.close()
            except OSError:
                pass
            self._sock = None
