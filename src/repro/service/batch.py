"""Batch analysis driver: many (program, query) jobs, cache-first,
optionally through a process pool.

The driver is the service's throughput path: each :class:`Job` is
keyed (:func:`repro.service.cache.make_key`), looked up in the cache,
and only the misses are dispatched — serially, or across a
``concurrent.futures.ProcessPoolExecutor`` when ``workers`` is given.
Work crosses the process boundary as JSON-ready specs and returns as
serialized result payloads, so the pool exercises exactly the
serialization layer the on-disk cache uses.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple, Union

from ..analysis.analyzer import analyze
from ..fixpoint.engine import AnalysisConfig
from ..prolog.program import PredId
from ..typegraph.grammar import Grammar
from .cache import CacheKey, ResultCache, make_key
from .serialize import (decode_config, decode_input_types, decode_result,
                        encode_check, encode_config, encode_input_types,
                        encode_result)

__all__ = ["Job", "JobResult", "BatchReport", "WorkerPool", "run_batch",
           "jobs_from_benchmarks"]


@dataclass(frozen=True)
class Job:
    """One analysis workload."""

    name: str
    source: str
    query: PredId
    input_types: Optional[Tuple[Union[str, Grammar], ...]] = None
    config: Optional[AnalysisConfig] = None
    baseline: bool = False

    def key(self) -> CacheKey:
        return make_key(self.source, self.query, self.input_types,
                        self.config, self.baseline)


@dataclass
class JobResult:
    """Outcome of one job: the serialized payload plus provenance."""

    name: str
    key: CacheKey
    payload: dict
    cached: bool
    seconds: float

    def result(self, program=None):
        """Decode the payload into an ``AnalysisResult``."""
        return decode_result(self.payload, program)


@dataclass
class BatchReport:
    results: List[JobResult] = field(default_factory=list)
    hits: int = 0
    misses: int = 0
    seconds: float = 0.0

    def by_name(self) -> Dict[str, JobResult]:
        return {r.name: r for r in self.results}


def _job_spec(job: Job) -> dict:
    """JSON-ready form of a job for the process boundary."""
    return {
        "name": job.name,
        "source": job.source,
        "query": list(job.query),
        "input_types": encode_input_types(job.input_types),
        "config": (None if job.config is None
                   else encode_config(job.config)),
        "baseline": job.baseline,
    }


def _execute_spec(spec: dict) -> Tuple[str, dict, float]:
    """Worker entry point: run one analysis, return the serialized
    result.  Top-level so the process pool can pickle it; also the
    unit of work the :mod:`repro.service.server` daemon dispatches, so
    server and batch exercise the identical execution path.

    A spec with ``"check": True`` is a verification workload: the
    config carries the assertion set (and ``keep_deps``), and the
    payload gains a ``check`` section — verdicts plus blame slices —
    next to the encoded table, so cached hits serve bit-identical
    verdicts."""
    config = (None if spec["config"] is None
              else decode_config(spec["config"]))
    start = time.perf_counter()
    analysis = analyze(spec["source"],
                       (spec["query"][0], int(spec["query"][1])),
                       input_types=decode_input_types(spec["input_types"]),
                       config=config,
                       baseline=spec["baseline"])
    payload = encode_result(analysis.result)
    if spec.get("check"):
        from ..assertions import check_analysis
        assertions = (config.assertions
                      if config is not None and config.assertions
                      else None)
        report, slices = check_analysis(analysis, assertions)
        payload["check"] = encode_check(report, slices)
    seconds = time.perf_counter() - start
    return spec["name"], payload, seconds


def _warm_worker() -> None:
    """Pool initializer: pay the import/intern cold-start once per
    worker process instead of once per dispatched analysis.  Touching
    the common leaf grammars seeds the intern table and the arena
    symbol table, so the first real request runs warm."""
    from ..typegraph.grammar import g_any, g_atom, g_int
    from ..typegraph.ops import g_list_of
    from ..typegraph import arena  # noqa: F401  (compiles lazily)
    g_list_of(g_any())
    g_list_of(g_int())
    g_atom("[]")


def _worker_ready() -> None:
    """No-op task used by :meth:`WorkerPool.prefork` to force worker
    start-up (the initializer does the actual warming)."""


class WorkerPool:
    """A persistent, pre-warmed process pool executing analysis specs.

    Extracted from :func:`run_batch` so a long-lived server can keep
    the *same* pool — and therefore each worker's intern tables,
    opcache, and arenas — warm across many requests, where the batch
    driver used to build and tear one down per call.  Workers are
    single-threaded processes, which is what makes the unlocked memo
    tables safe (see :mod:`repro.typegraph.opcache`).

    Fork discipline: on POSIX the workers are forked, and a fork taken
    while another thread holds one of the intern/cache locks would
    hand the child that lock forever-held (``_warm_worker`` interns
    grammars and would deadlock).  Create the executor — or call
    :meth:`prefork` — while the process is still effectively
    single-threaded; the server does this in ``start()``, and
    ``run_batch`` runs on the CLI's only thread.
    """

    def __init__(self, workers: int) -> None:
        if workers < 1:
            raise ValueError("workers must be >= 1")
        self.workers = workers
        self._executor = None

    @property
    def executor(self):
        """The underlying ``ProcessPoolExecutor``, created (and its
        workers warmed) on first use."""
        if self._executor is None:
            from concurrent.futures import ProcessPoolExecutor
            self._executor = ProcessPoolExecutor(
                max_workers=self.workers, initializer=_warm_worker)
        return self._executor

    def prefork(self) -> None:
        """Spawn (and warm) every worker process *now* instead of on
        first submit: one no-op task per worker forces the pool to
        full size while the caller still controls the threading
        picture."""
        from concurrent.futures import wait
        wait([self.executor.submit(_worker_ready)
              for _ in range(self.workers)])

    def submit_spec(self, spec: dict):
        """Dispatch one spec; returns a ``concurrent.futures.Future``
        resolving to ``(name, payload, seconds)``."""
        return self.executor.submit(_execute_spec, spec)

    def map_specs(self, specs: Sequence[dict]):
        """Execute ``specs`` across the pool, results in order."""
        return list(self.executor.map(_execute_spec, specs))

    def shutdown(self, wait: bool = True) -> None:
        if self._executor is not None:
            self._executor.shutdown(wait=wait)
            self._executor = None

    def __enter__(self) -> "WorkerPool":
        return self

    def __exit__(self, *exc_info) -> None:
        self.shutdown()


def run_batch(jobs: Sequence[Job],
              cache: Optional[ResultCache] = None,
              workers: Optional[int] = None) -> BatchReport:
    """Analyze ``jobs``, consulting ``cache`` before dispatch.

    ``workers``: ``None``/``0``/``1`` runs misses serially in-process;
    ``>= 2`` fans them out over a process pool of that size.  Results
    come back in job order either way.
    """
    report = BatchReport()
    start = time.perf_counter()
    pending: List[Tuple[int, Job, CacheKey]] = []
    slots: List[Optional[JobResult]] = [None] * len(jobs)
    for index, job in enumerate(jobs):
        key = job.key()
        payload = cache.get(key) if cache is not None else None
        if payload is not None:
            slots[index] = JobResult(job.name, key, payload,
                                     cached=True, seconds=0.0)
            report.hits += 1
        else:
            pending.append((index, job, key))
            report.misses += 1

    if pending:
        specs = [_job_spec(job) for _, job, _ in pending]
        if workers is not None and workers >= 2 and len(pending) > 1:
            with WorkerPool(workers) as pool:
                outcomes = pool.map_specs(specs)
        else:
            outcomes = [_execute_spec(spec) for spec in specs]
        for (index, job, key), (name, payload, seconds) in \
                zip(pending, outcomes):
            slots[index] = JobResult(name, key, payload,
                                     cached=False, seconds=seconds)
            if cache is not None:
                cache.put(key, payload)

    report.results = [slot for slot in slots if slot is not None]
    report.seconds = time.perf_counter() - start
    return report


def jobs_from_benchmarks(names: Optional[Sequence[str]] = None,
                         config: Optional[AnalysisConfig] = None,
                         baseline: bool = False) -> List[Job]:
    """Jobs for the built-in §9 corpus (default: all 15 workloads)."""
    from ..benchprogs import benchmark, benchmark_names
    if names is None:
        names = benchmark_names()
    jobs = []
    for name in names:
        bp = benchmark(name)
        jobs.append(Job(name=bp.name, source=bp.source, query=bp.query,
                        input_types=bp.input_types, config=config,
                        baseline=baseline))
    return jobs
