"""Blocking client for the ``repro serve`` daemon and ``repro router``.

One :class:`ServeClient` owns one TCP connection and issues one
request at a time (the protocol is strictly request/response per
connection).  It is deliberately *not* thread-safe: concurrency is
expressed by giving each thread its own client, which is exactly how
the load generator and the coalescing tests drive the server.

The wire protocol lives in :mod:`repro.service.transport`; this module
adds the operation surface (``analyze``/``batch``/``stats``/...) and
process helpers:

* :func:`spawn_server` — launch ``repro serve`` as a subprocess on an
  ephemeral port and parse the ready line (tests, benchmarks).
* :func:`wait_for_server` — poll until the daemon answers ``ping``.

Connecting retries with backoff by default (``connect_retries``), so a
client racing a just-spawned server rides out the window where the
socket is not up yet instead of dying on a bare
``ConnectionRefusedError``; when the server really is absent the
failure is a :class:`ServeError` (``code="connection"``) whose message
says what to check.

Against a redundant front door (N ``repro router`` processes sharing
one fleet), construct the client with ``endpoints=[(host, port), ...]``
instead of a single address: connects walk the list until one router
answers, and a mid-request transport failure on an idempotent op fails
over to the next endpoint automatically.  :func:`fleet_endpoints`
reads that list straight out of a ``fleet.json`` spec.
"""

from __future__ import annotations

import os
import subprocess
import sys
import time
from typing import List, Optional, Sequence, Tuple, Union

from ..fixpoint.engine import AnalysisConfig
from ..prolog.program import PredId
from ..typegraph.grammar import Grammar
from .serialize import encode_config, encode_input_types
from .transport import BlockingLineConnection, ConnectError, ProtocolError

DEFAULT_PORT = 7871  # mirrors server.DEFAULT_PORT without the import

__all__ = ["ServeClient", "ServeError", "spawn_server",
           "spawn_router", "wait_for_server", "fleet_endpoints"]


class ServeError(RuntimeError):
    """An error response from the server; ``code`` mirrors the
    protocol (``overloaded``, ``timeout``, ``bad-request``, ...)."""

    def __init__(self, message: str, code: Optional[str] = None) -> None:
        super().__init__(message)
        self.code = code


class ServeClient:
    """Blocking newline-delimited-JSON client (context manager).

    ``ServeClient(host, port)`` targets one server; ``ServeClient(
    endpoints=[(host, port), ...])`` targets a redundant router fleet
    — connects latch onto the first endpoint that answers, and
    idempotent ops that die mid-request fail over to the next one.
    """

    #: Ops safe to replay against another endpoint after a transport
    #: failure mid-request (reads, or pure functions of the cache key
    #: — mirrors the router's own failover set).
    _FAILOVER_OPS = frozenset({"analyze", "check", "slice", "batch",
                               "ping", "stats", "cache-info", "route",
                               "router-info", "sync-membership",
                               "digest", "fetch"})

    def __init__(self, host: str = "127.0.0.1",
                 port: int = DEFAULT_PORT,
                 timeout: Optional[float] = 120.0,
                 connect_retries: int = 3,
                 connect_backoff: float = 0.05,
                 endpoints: Optional[Sequence[Tuple[str, int]]]
                 = None) -> None:
        self.timeout = timeout
        self.connect_retries = connect_retries
        self.connect_backoff = connect_backoff
        if endpoints is not None:
            self._conn = BlockingLineConnection(
                timeout=timeout, endpoints=list(endpoints))
        else:
            self._conn = BlockingLineConnection(host, port, timeout)
        self._next_id = 0

    @property
    def host(self) -> str:
        """The currently-targeted endpoint's host."""
        return self._conn.host

    @property
    def port(self) -> int:
        return self._conn.port

    @property
    def endpoints(self) -> List[Tuple[str, int]]:
        return list(self._conn.endpoints)

    # -- plumbing ------------------------------------------------------------

    def connect(self, retries: Optional[int] = None,
                backoff: Optional[float] = None) -> "ServeClient":
        """Establish the connection now (idempotent), retrying with
        exponential backoff while the server socket comes up.  Raises
        :class:`ServeError` (``code="connection"``) with a clear
        message when it never does."""
        try:
            self._conn.connect(
                retries=(self.connect_retries if retries is None
                         else retries),
                backoff=(self.connect_backoff if backoff is None
                         else backoff))
        except ConnectError as error:
            raise ServeError(str(error), "connection") from None
        return self

    def close(self) -> None:
        self._conn.close()

    def __enter__(self) -> "ServeClient":
        return self.connect()

    def __exit__(self, *exc_info) -> None:
        self.close()

    def request(self, op: str, **fields) -> dict:
        """One round trip; returns the ``result`` object or raises
        :class:`ServeError`.

        With several endpoints configured, an idempotent op whose
        transport dies mid-request is replayed against the next
        endpoint (once per endpoint) before the failure surfaces —
        the client-side half of router redundancy."""
        self._next_id += 1
        request = {"id": self._next_id, "op": op}
        request.update((k, v) for k, v in fields.items()
                       if v is not None)
        attempts = (len(self._conn.endpoints)
                    if op in self._FAILOVER_OPS else 1)
        for attempt in range(attempts):
            if not self._conn.connected:
                self.connect()
            try:
                response = self._conn.round_trip(request)
            except ConnectError as error:
                # The connection is already closed; prefer another
                # endpoint on the next connect and replay if allowed.
                self._conn.rotate()
                if attempt + 1 < attempts:
                    continue
                raise ServeError(str(error), "connection") from None
            except ProtocolError as error:
                raise ServeError("garbage response: %s" % error,
                                 "protocol") from None
            if not response.get("ok"):
                raise ServeError(response.get("error", "unknown error"),
                                 response.get("code"))
            return response["result"]
        raise AssertionError("unreachable")

    # -- operations ----------------------------------------------------------

    def analyze(self, source: Optional[str] = None,
                query: Optional[PredId] = None,
                benchmark: Optional[str] = None,
                input_types: Optional[Sequence[Union[str, Grammar]]]
                = None,
                config: Optional[AnalysisConfig] = None,
                or_width: Optional[int] = None,
                baseline: bool = False,
                payload: bool = True,
                timeout: Optional[float] = None) -> dict:
        """Analyze a source+query or a built-in benchmark.  Returns
        the server's result dict (``fingerprint``, ``cached``,
        ``coalesced``, ``seconds``, and ``payload`` unless
        ``payload=False``)."""
        return self.request(
            "analyze",
            source=source,
            query=None if query is None else list(query),
            benchmark=benchmark,
            input_types=encode_input_types(input_types),
            config=None if config is None else encode_config(config),
            or_width=or_width,
            baseline=baseline or None,
            payload=payload if not payload else None,
            timeout=timeout)

    def check(self, source: Optional[str] = None,
              query: Optional[PredId] = None,
              benchmark: Optional[str] = None,
              input_types: Optional[Sequence[Union[str, Grammar]]]
              = None,
              config: Optional[AnalysisConfig] = None,
              or_width: Optional[int] = None,
              baseline: bool = False,
              timeout: Optional[float] = None) -> dict:
        """Check the workload's own ``assert_*`` directives against
        the analysis.  Returns ``verdicts``, ``counts``, ``passed``,
        and a ``check_fingerprint`` stable across kernel tiers and
        cache state."""
        return self.request(
            "check",
            source=source,
            query=None if query is None else list(query),
            benchmark=benchmark,
            input_types=encode_input_types(input_types),
            config=None if config is None else encode_config(config),
            or_width=or_width,
            baseline=baseline or None,
            timeout=timeout)

    def slice(self, source: Optional[str] = None,
              query: Optional[PredId] = None,
              benchmark: Optional[str] = None,
              input_types: Optional[Sequence[Union[str, Grammar]]]
              = None,
              config: Optional[AnalysisConfig] = None,
              or_width: Optional[int] = None,
              baseline: bool = False,
              timeout: Optional[float] = None) -> dict:
        """Like :meth:`check`, plus the ``slices`` list — one
        source-anchored blame slice per offending entry of every
        violated assertion."""
        return self.request(
            "slice",
            source=source,
            query=None if query is None else list(query),
            benchmark=benchmark,
            input_types=encode_input_types(input_types),
            config=None if config is None else encode_config(config),
            or_width=or_width,
            baseline=baseline or None,
            timeout=timeout)

    def batch(self, benchmarks: Optional[Sequence[str]] = None,
              jobs: Optional[Sequence[dict]] = None,
              payload: bool = False,
              timeout: Optional[float] = None) -> dict:
        return self.request("batch",
                            benchmarks=(None if benchmarks is None
                                        else list(benchmarks)),
                            jobs=None if jobs is None else list(jobs),
                            payload=payload or None,
                            timeout=timeout)

    def stats(self) -> dict:
        return self.request("stats")

    def cache_info(self) -> dict:
        return self.request("cache-info")

    def invalidate(self, source: Optional[str] = None,
                   program_hash: Optional[str] = None) -> dict:
        return self.request("invalidate", source=source,
                            program_hash=program_hash)

    def ping(self) -> dict:
        return self.request("ping")

    def shutdown(self) -> dict:
        return self.request("shutdown")

    # -- router operations ---------------------------------------------------

    def router_info(self) -> dict:
        """Topology/health of a ``repro router`` front door."""
        return self.request("router-info")

    def drain_shard(self, shard: str) -> dict:
        return self.request("drain-shard", shard=shard)

    def undrain_shard(self, shard: str) -> dict:
        return self.request("undrain-shard", shard=shard)

    def add_shard(self, host: str, port: int,
                  shard: Optional[str] = None) -> dict:
        """Join a running shard to the router's ring (after a health
        probe passes); only its consistent-hash slice moves."""
        return self.request("add-shard", host=host, port=port,
                            shard=shard)

    def remove_shard(self, shard: str) -> dict:
        """Drain a shard, then delete it from the ring."""
        return self.request("remove-shard", shard=shard)

    def sync_membership(self) -> dict:
        """The router's current ring membership + journal sequence —
        what a standby router polls to keep its ring consistent."""
        return self.request("sync-membership")

    def anti_entropy(self) -> dict:
        """Force one anti-entropy repair pass on the router now
        (normally periodic); returns the pass's repair counters."""
        return self.request("anti-entropy")


def fleet_endpoints(path: Union[str, "os.PathLike"]
                    ) -> List[Tuple[str, int]]:
    """The router endpoints of a ``fleet.json`` spec, as the
    ``ServeClient(endpoints=...)`` list — one call turns a fleet file
    into a failover-aware client."""
    from .cluster import load_fleet
    spec = load_fleet(path)
    routers = spec.get("routers") or []
    if not routers:
        raise ValueError("fleet spec %s lists no routers" % path)
    return [(host, port) for host, port in routers]


# -- process helpers ---------------------------------------------------------

def wait_for_server(host: str, port: int, timeout: float = 30.0,
                    interval: float = 0.05) -> None:
    """Block until ``ping`` answers (or raise ``TimeoutError``)."""
    deadline = time.monotonic() + timeout
    last_error: Optional[Exception] = None
    while time.monotonic() < deadline:
        try:
            with ServeClient(host, port, timeout=interval * 10,
                             connect_retries=0) as client:
                client.ping()
            return
        except (OSError, ServeError, ValueError) as error:
            last_error = error
            time.sleep(interval)
    raise TimeoutError("no repro serve at %s:%d after %.1fs (%s)"
                       % (host, port, timeout, last_error))


def _repro_env() -> dict:
    """Environment for a spawned repro subprocess: the child must
    import the same repro this process runs (uninstalled checkouts
    rely on PYTHONPATH=src)."""
    import os
    package_root = os.path.dirname(os.path.dirname(
        os.path.dirname(os.path.abspath(__file__))))
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        [package_root] + ([env["PYTHONPATH"]]
                          if env.get("PYTHONPATH") else []))
    return env


#: Rotate a spawned daemon's stderr log once it reaches this size
#: (the previous generation is kept as ``<path>.1``).  A crash-looping
#: shard restarted under supervision appends to one log forever; the
#: cap bounds that at two generations instead of a full disk.
LOG_ROTATE_BYTES = 1 << 20


def _rotate_log(path: str, max_bytes: int) -> None:
    """Rotate ``path`` to ``path.1`` when it is ``max_bytes`` or
    bigger (``max_bytes=0`` disables rotation).  Called before each
    append-mode open, so the cap holds across arbitrarily many
    restarts of the same shard."""
    if not max_bytes:
        return
    try:
        if os.path.getsize(path) < max_bytes:
            return
        os.replace(path, path + ".1")
    except OSError:
        pass


def _spawn_ready(argv: Sequence[str], ready_timeout: float,
                 what: str, stderr_path: Optional[str] = None,
                 log_max_bytes: Optional[int] = None
                 ) -> Tuple[subprocess.Popen, str, int]:
    """Launch a repro daemon subprocess and parse its ready line
    (``... listening on HOST:PORT ...``).

    ``stderr_path`` captures the child's stderr to a log file (append
    mode, so restarts of the same shard accumulate in one place) —
    without it crash evidence vanishes into ``DEVNULL``.  The log is
    rotated at ``log_max_bytes`` (default :data:`LOG_ROTATE_BYTES`;
    0 disables).
    """
    if stderr_path is None:
        stderr = subprocess.DEVNULL
    else:
        _rotate_log(stderr_path, LOG_ROTATE_BYTES
                    if log_max_bytes is None else log_max_bytes)
        stderr = open(stderr_path, "ab", buffering=0)
    try:
        process = subprocess.Popen(
            [sys.executable, "-m", "repro"] + list(argv),
            stdout=subprocess.PIPE, stderr=stderr, text=True,
            env=_repro_env())
    finally:
        if stderr_path is not None:
            stderr.close()  # the child holds its own descriptor now
    # Read the pipe on a thread so ready_timeout holds even against a
    # child that is alive but silent (readline alone would block
    # unboundedly and the deadline would never be checked).
    import queue
    import threading
    lines: "queue.Queue[str]" = queue.Queue()

    def pump() -> None:
        for text in process.stdout:
            lines.put(text)
        lines.put("")  # EOF marker

    threading.Thread(target=pump, daemon=True).start()
    deadline = time.monotonic() + ready_timeout
    line = ""
    while True:
        remaining = deadline - time.monotonic()
        if remaining <= 0:
            break
        try:
            line = lines.get(timeout=min(remaining, 0.5))
        except queue.Empty:
            continue
        if "listening on" in line:
            address = line.split("listening on", 1)[1].split()[0]
            host, _, port_text = address.rpartition(":")
            return process, host, int(port_text)
        if not line:  # EOF: the child exited or closed stdout
            break
    process.terminate()
    raise RuntimeError("%s did not come up (last line: %r)"
                       % (what, line))


def spawn_server(*extra_args: str,
                 ready_timeout: float = 60.0,
                 stderr_path: Optional[str] = None,
                 log_max_bytes: Optional[int] = None
                 ) -> Tuple[subprocess.Popen, str, int]:
    """Launch ``repro serve --port 0 [extra_args]`` as a subprocess
    and return ``(process, host, port)`` parsed from the ready line.
    The caller owns the process (send ``shutdown`` or terminate it).
    ``stderr_path`` appends the child's stderr to a log file (rotated
    at ``log_max_bytes``)."""
    return _spawn_ready(["serve", "--port", "0"] + list(extra_args),
                        ready_timeout, "repro serve",
                        stderr_path=stderr_path,
                        log_max_bytes=log_max_bytes)


def spawn_router(*extra_args: str,
                 ready_timeout: float = 120.0,
                 stderr_path: Optional[str] = None
                 ) -> Tuple[subprocess.Popen, str, int]:
    """Launch ``repro router --port 0 [extra_args]`` (for example with
    ``--spawn N`` for local shards) and return ``(process, host,
    port)`` parsed from its ready line.  ``stderr_path`` captures the
    router's stderr (membership/supervision prints) to a log file."""
    return _spawn_ready(["router", "--port", "0"] + list(extra_args),
                        ready_timeout, "repro router",
                        stderr_path=stderr_path)
