"""Blocking client for the ``repro serve`` daemon.

One :class:`ServeClient` owns one TCP connection and issues one
request at a time (the protocol is strictly request/response per
connection).  It is deliberately *not* thread-safe: concurrency is
expressed by giving each thread its own client, which is exactly how
the load generator and the coalescing tests drive the server.

Helpers:

* :func:`spawn_server` — launch ``repro serve`` as a subprocess on an
  ephemeral port and parse the ready line (tests, benchmarks).
* :func:`wait_for_server` — poll until the daemon answers ``ping``.
"""

from __future__ import annotations

import json
import socket
import subprocess
import sys
import time
from typing import Optional, Sequence, Tuple, Union

from ..fixpoint.engine import AnalysisConfig
from ..prolog.program import PredId
from ..typegraph.grammar import Grammar
from .serialize import encode_config, encode_input_types
from .server import DEFAULT_PORT

__all__ = ["ServeClient", "ServeError", "spawn_server",
           "wait_for_server"]


class ServeError(RuntimeError):
    """An error response from the server; ``code`` mirrors the
    protocol (``overloaded``, ``timeout``, ``bad-request``, ...)."""

    def __init__(self, message: str, code: Optional[str] = None) -> None:
        super().__init__(message)
        self.code = code


class ServeClient:
    """Blocking newline-delimited-JSON client (context manager)."""

    def __init__(self, host: str = "127.0.0.1",
                 port: int = DEFAULT_PORT,
                 timeout: Optional[float] = 120.0) -> None:
        self.host = host
        self.port = port
        self.timeout = timeout
        self._sock: Optional[socket.socket] = None
        self._file = None
        self._next_id = 0

    # -- plumbing ------------------------------------------------------------

    def _ensure_connected(self) -> None:
        if self._sock is None:
            self._sock = socket.create_connection(
                (self.host, self.port), timeout=self.timeout)
            self._file = self._sock.makefile("rwb")

    def close(self) -> None:
        if self._file is not None:
            try:
                self._file.close()
            except OSError:
                pass
            self._file = None
        if self._sock is not None:
            try:
                self._sock.close()
            except OSError:
                pass
            self._sock = None

    def __enter__(self) -> "ServeClient":
        self._ensure_connected()
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def request(self, op: str, **fields) -> dict:
        """One round trip; returns the ``result`` object or raises
        :class:`ServeError`."""
        self._ensure_connected()
        self._next_id += 1
        request = {"id": self._next_id, "op": op}
        request.update((k, v) for k, v in fields.items()
                       if v is not None)
        line = json.dumps(request).encode("utf-8") + b"\n"
        try:
            self._file.write(line)
            self._file.flush()
            raw = self._file.readline()
        except OSError as error:
            self.close()
            raise ServeError("connection to %s:%d failed: %s"
                             % (self.host, self.port, error),
                             "connection") from None
        if not raw:
            self.close()
            raise ServeError("server closed the connection",
                             "connection")
        response = json.loads(raw)
        if not response.get("ok"):
            raise ServeError(response.get("error", "unknown error"),
                             response.get("code"))
        return response["result"]

    # -- operations ----------------------------------------------------------

    def analyze(self, source: Optional[str] = None,
                query: Optional[PredId] = None,
                benchmark: Optional[str] = None,
                input_types: Optional[Sequence[Union[str, Grammar]]]
                = None,
                config: Optional[AnalysisConfig] = None,
                or_width: Optional[int] = None,
                baseline: bool = False,
                payload: bool = True,
                timeout: Optional[float] = None) -> dict:
        """Analyze a source+query or a built-in benchmark.  Returns
        the server's result dict (``fingerprint``, ``cached``,
        ``coalesced``, ``seconds``, and ``payload`` unless
        ``payload=False``)."""
        return self.request(
            "analyze",
            source=source,
            query=None if query is None else list(query),
            benchmark=benchmark,
            input_types=encode_input_types(input_types),
            config=None if config is None else encode_config(config),
            or_width=or_width,
            baseline=baseline or None,
            payload=payload if not payload else None,
            timeout=timeout)

    def batch(self, benchmarks: Optional[Sequence[str]] = None,
              jobs: Optional[Sequence[dict]] = None,
              payload: bool = False,
              timeout: Optional[float] = None) -> dict:
        return self.request("batch",
                            benchmarks=(None if benchmarks is None
                                        else list(benchmarks)),
                            jobs=None if jobs is None else list(jobs),
                            payload=payload or None,
                            timeout=timeout)

    def stats(self) -> dict:
        return self.request("stats")

    def cache_info(self) -> dict:
        return self.request("cache-info")

    def invalidate(self, source: Optional[str] = None,
                   program_hash: Optional[str] = None) -> dict:
        return self.request("invalidate", source=source,
                            program_hash=program_hash)

    def ping(self) -> dict:
        return self.request("ping")

    def shutdown(self) -> dict:
        return self.request("shutdown")


# -- process helpers ---------------------------------------------------------

def wait_for_server(host: str, port: int, timeout: float = 30.0,
                    interval: float = 0.05) -> None:
    """Block until ``ping`` answers (or raise ``TimeoutError``)."""
    deadline = time.monotonic() + timeout
    last_error: Optional[Exception] = None
    while time.monotonic() < deadline:
        try:
            with ServeClient(host, port, timeout=interval * 10) as client:
                client.ping()
            return
        except (OSError, ServeError, ValueError) as error:
            last_error = error
            time.sleep(interval)
    raise TimeoutError("no repro serve at %s:%d after %.1fs (%s)"
                       % (host, port, timeout, last_error))


def spawn_server(*extra_args: str,
                 ready_timeout: float = 60.0
                 ) -> Tuple[subprocess.Popen, str, int]:
    """Launch ``repro serve --port 0 [extra_args]`` as a subprocess
    and return ``(process, host, port)`` parsed from the ready line.
    The caller owns the process (send ``shutdown`` or terminate it)."""
    import os
    # The child must import the same repro this process runs
    # (uninstalled checkouts rely on PYTHONPATH=src).
    package_root = os.path.dirname(os.path.dirname(
        os.path.dirname(os.path.abspath(__file__))))
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        [package_root] + ([env["PYTHONPATH"]]
                          if env.get("PYTHONPATH") else []))
    process = subprocess.Popen(
        [sys.executable, "-m", "repro", "serve", "--port", "0"]
        + list(extra_args),
        stdout=subprocess.PIPE, stderr=subprocess.DEVNULL, text=True,
        env=env)
    # Read the pipe on a thread so ready_timeout holds even against a
    # child that is alive but silent (readline alone would block
    # unboundedly and the deadline would never be checked).
    import queue
    import threading
    lines: "queue.Queue[str]" = queue.Queue()

    def pump() -> None:
        for text in process.stdout:
            lines.put(text)
        lines.put("")  # EOF marker

    threading.Thread(target=pump, daemon=True).start()
    deadline = time.monotonic() + ready_timeout
    line = ""
    while True:
        remaining = deadline - time.monotonic()
        if remaining <= 0:
            break
        try:
            line = lines.get(timeout=min(remaining, 0.5))
        except queue.Empty:
            continue
        if "listening on" in line:
            address = line.split("listening on", 1)[1].split()[0]
            host, _, port_text = address.rpartition(":")
            return process, host, int(port_text)
        if not line:  # EOF: the child exited or closed stdout
            break
    process.terminate()
    raise RuntimeError("repro serve did not come up (last line: %r)"
                       % line)
