"""The analysis service layer: durable, reusable analysis artifacts.

Four pieces turn the one-shot analyzer into a serving substrate:

* :mod:`repro.service.serialize` — canonical JSON encodings and
  content hashes for everything the analyzer consumes and produces;
* :mod:`repro.service.cache` — a content-addressed result store
  (in-memory LRU over an optional on-disk object store);
* :mod:`repro.service.batch` — a cache-first batch driver with an
  optional process pool;
* :mod:`repro.service.incremental` — SCC-scoped cache invalidation,
  promotion across program edits, and table-seeded re-analysis;
* :mod:`repro.service.transport` — the shared newline-delimited JSON
  wire protocol (framing, envelopes, connection lifecycle);
* :mod:`repro.service.server` / :mod:`repro.service.client` — the
  long-lived ``repro serve`` daemon (warm caches, request coalescing,
  backpressure) and its blocking client;
* :mod:`repro.service.cluster` — the ``repro router`` front door:
  consistent-hash sharding over N serve daemons with health checks,
  failover, and a shared on-disk L2 cache.

Quickstart::

    from repro.service import Job, ResultCache, run_batch
    cache = ResultCache("~/.cache/repro")
    report = run_batch([Job("app", source, ("app", 3))], cache)
    report.results[0].result().output
"""

from .batch import (BatchReport, Job, JobResult, WorkerPool,
                    jobs_from_benchmarks, run_batch)
from .cache import CacheKey, CacheStats, ResultCache, make_key
from .incremental import (PromotionReport, ReanalysisInfo,
                          dirty_predicates, promote, reanalyze)
from .serialize import (FORMAT_VERSION, canonical_json, config_hash,
                        content_hash, decode_config, decode_grammar,
                        decode_result, decode_subst, encode_config,
                        encode_grammar, encode_result, encode_subst,
                        payload_fingerprint, predicate_hashes,
                        program_hash, result_fingerprint)

__all__ = [
    "FORMAT_VERSION",
    "canonical_json", "content_hash",
    "encode_grammar", "decode_grammar",
    "encode_subst", "decode_subst",
    "encode_config", "decode_config", "config_hash",
    "encode_result", "decode_result", "result_fingerprint",
    "payload_fingerprint", "predicate_hashes", "program_hash",
    "CacheKey", "CacheStats", "ResultCache", "make_key",
    "Job", "JobResult", "BatchReport", "WorkerPool", "run_batch",
    "jobs_from_benchmarks",
    "AnalysisServer", "serve_main",
    "ServeClient", "ServeError", "spawn_server", "spawn_router",
    "wait_for_server",
    "ClusterRouter", "HashRing", "router_main",
    "dirty_predicates", "promote", "PromotionReport",
    "reanalyze", "ReanalysisInfo",
]

#: server/client re-exports resolved lazily: every one-shot CLI, batch
#: worker, and pool child imports this package, and none of them needs
#: the asyncio/socket/subprocess stack the daemon drags in.
_LAZY = {
    "AnalysisServer": "server", "serve_main": "server",
    "ServeClient": "client", "ServeError": "client",
    "spawn_server": "client", "spawn_router": "client",
    "wait_for_server": "client",
    "ClusterRouter": "cluster", "HashRing": "cluster",
    "router_main": "cluster",
}


def __getattr__(name):
    module_name = _LAZY.get(name)
    if module_name is None:
        raise AttributeError("module %r has no attribute %r"
                             % (__name__, name))
    from importlib import import_module
    return getattr(import_module("." + module_name, __name__), name)
