"""Incremental re-analysis: SCC-scoped invalidation and table
re-seeding.

A cached analysis result depends only on the *cone* of its query — the
predicates reachable from it in the call graph.  When a program is
edited, :func:`dirty_predicates` diffs the per-predicate content
hashes and closes the changed set over the SCC condensation of the new
call graph (:mod:`repro.analysis.callgraph`): a predicate is dirty iff
its own SCC contains an edited predicate or calls (transitively) into
an SCC that does.  Everything else — clean predicates — provably
reaches the same fixpoint as before, so

* :func:`promote` re-keys cached results whose query is clean to the
  new program hash (a cache hit without any analysis) and invalidates
  only the dirty ones, and
* :func:`reanalyze` re-runs the engine for a dirty query with the
  table *pre-seeded* by the surviving entries of clean predicates
  (:meth:`repro.fixpoint.engine.Engine.seed_entry`), so only the dirty
  cone is iterated.  Seeds are reused on exact input matches only
  (see :meth:`Engine._solve`), which keeps the seeded run's precision
  identical to a cold run's — up to the polyvariance cap, which seeds
  count against like any other entry.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Set, Tuple, Union

from ..analysis.analyzer import analyze
from ..analysis.callgraph import CallGraph, build_callgraph
from ..fixpoint.engine import AnalysisConfig, AnalysisResult
from ..prolog.program import PredId, Program, parse_program
from ..typegraph.grammar import Grammar
from .cache import CacheKey, ResultCache, make_key
from .serialize import (decode_result, encode_result, predicate_hashes,
                        program_hash)

__all__ = ["dirty_predicates", "promote", "PromotionReport",
           "reanalyze", "ReanalysisInfo"]


def _as_program(source: Union[str, Program]) -> Program:
    return parse_program(source) if isinstance(source, str) else source


def dirty_predicates(old_source: Union[str, Program],
                     new_source: Union[str, Program],
                     new_graph: Optional[CallGraph] = None) -> Set[PredId]:
    """Predicates of the *new* program whose analysis may differ from
    the old program's.

    Directly dirty: the predicate's clauses changed (per-predicate
    content hash), the predicate is new, or the defined-status of one
    of its callees changed (a callee was added or removed elsewhere).
    The set is then closed over the new call graph's SCC condensation:
    an SCC is dirty if it contains a directly-dirty predicate or any
    callee SCC is dirty.
    """
    old_program = _as_program(old_source)
    new_program = _as_program(new_source)
    if new_graph is None:
        new_graph = build_callgraph(new_program)
    old_hashes = predicate_hashes(old_program)
    new_hashes = predicate_hashes(new_program)

    directly: Set[PredId] = set()
    for pred, digest in new_hashes.items():
        if old_hashes.get(pred) != digest:
            directly.add(pred)
            continue
        for calls in new_graph.clause_calls.get(pred, ()):
            for callee in calls:
                if old_program.defined(callee) != \
                        new_program.defined(callee):
                    directly.add(pred)
                    break
            if pred in directly:
                break

    # Tarjan emits SCCs callees-first, so one pass in emission order
    # propagates dirtiness from callee components to their callers.
    dirty: Set[PredId] = set()
    dirty_sccs: Set[int] = set()
    for index, scc in enumerate(new_graph.sccs):
        is_dirty = any(pred in directly for pred in scc)
        if not is_dirty:
            for pred in scc:
                for callee in new_graph.edges.get(pred, ()):
                    callee_scc = new_graph.scc_of[callee]
                    if callee_scc != index and callee_scc in dirty_sccs:
                        is_dirty = True
                        break
                if is_dirty:
                    break
        if is_dirty:
            dirty_sccs.add(index)
            dirty.update(scc)
    return dirty


@dataclass
class PromotionReport:
    """What :func:`promote` did to the cache."""

    old_program_hash: str
    new_program_hash: str
    dirty: Set[PredId] = field(default_factory=set)
    promoted: List[CacheKey] = field(default_factory=list)
    invalidated: List[CacheKey] = field(default_factory=list)


def promote(cache: ResultCache,
            old_source: Union[str, Program],
            new_source: Union[str, Program]) -> PromotionReport:
    """Carry cached results across a program edit.

    Every cached entry of the old program version whose query
    predicate is *clean* (still defined, SCC cone unchanged) is
    *moved* to the new program hash — a free warm cache for the new
    version, without leaving a copy to grow the store per edit.
    Entries whose query is dirty are invalidated; entries for other
    old program versions are untouched.
    """
    old_program = _as_program(old_source)
    new_program = _as_program(new_source)
    report = PromotionReport(program_hash(old_program),
                             program_hash(new_program))
    if report.old_program_hash == report.new_program_hash:
        return report
    report.dirty = dirty_predicates(old_program, new_program)
    for key, payload in cache.entries_for_program(report.old_program_hash):
        if new_program.defined(key.query) and key.query not in report.dirty:
            cache.put(key.with_program(report.new_program_hash), payload)
            report.promoted.append(key)
        else:
            report.invalidated.append(key)
        cache.invalidate(key)  # the old version is superseded
    return report


@dataclass
class ReanalysisInfo:
    """Provenance of one :func:`reanalyze` outcome."""

    key: CacheKey
    cached: bool = False
    seeded: int = 0
    dirty: Set[PredId] = field(default_factory=set)


def reanalyze(new_source: Union[str, Program], query: PredId,
              cache: ResultCache,
              old_source: Optional[Union[str, Program]] = None,
              input_types: Optional[Sequence[Union[str, Grammar]]] = None,
              config: Optional[AnalysisConfig] = None,
              baseline: bool = False
              ) -> Tuple[AnalysisResult, ReanalysisInfo]:
    """Analysis result for ``query`` over the edited program, reusing
    as much cached work as possible.

    Resolution order: exact cache hit on the new program version →
    done; otherwise, if the same workload is cached for ``old_source``,
    compute the dirty set and re-run the engine seeded with the old
    table's clean entries; otherwise analyze cold.  The result is
    stored under the new key either way.
    """
    new_program = _as_program(new_source)
    key = make_key(new_program, query, input_types, config, baseline)
    payload = cache.get(key)
    if payload is not None:
        return decode_result(payload), ReanalysisInfo(key, cached=True)

    info = ReanalysisInfo(key)
    seeds: List[Tuple[PredId, object, object]] = []
    if old_source is not None:
        old_program = _as_program(old_source)
        old_key = make_key(old_program, query, input_types, config,
                           baseline)
        old_payload = cache.get(old_key)
        if old_payload is not None:
            info.dirty = dirty_predicates(old_program, new_program)
            old_result = decode_result(old_payload)
            for entry in old_result.entries:
                if entry.pred not in info.dirty and \
                        new_program.defined(entry.pred):
                    seeds.append((entry.pred, entry.beta_in,
                                  entry.beta_out))
    analysis = analyze(new_program, query, input_types=input_types,
                       config=config, baseline=baseline, seeds=seeds)
    info.seeded = len(seeds)
    cache.put(key, encode_result(analysis.result))
    return analysis.result, info
