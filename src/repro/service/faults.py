"""Deterministic fault injection for the service transport.

The cluster's self-healing claims — auto-restart, failover, replicated
warm memory — are only claims until the failures they guard against
can be produced *on demand and reproducibly*.  This module defines a
seeded :class:`FaultPlan`: a list of fault rules evaluated at fixed
points of :class:`~repro.service.transport.LineServer`'s connection
lifecycle, each drawing from its own deterministic RNG stream, so the
same plan against the same request sequence injects the same faults.

Fault kinds (the injection point in parentheses):

``refuse-accept``
    Close a just-accepted connection before reading anything (accept).
``drop-connection``
    Read a request, then close the connection without answering
    (request).
``delay-read``
    Sleep ``delay`` seconds between reading a request and handling it
    (request).
``crash-process``
    SIGKILL the process when the matching request arrives — the
    hardest failure a supervisor must survive (request).
``delay-write``
    Sleep ``delay`` seconds before writing a response (response).
``truncate-line``
    Write only the first half of a response line, then close — the
    torn-write shape clients must treat as a transport failure, never
    as data (response).

Spec grammar (JSON, via ``--faults`` on ``repro serve`` / ``repro
router`` or the ``REPRO_FAULTS`` environment variable; a leading ``@``
reads the spec from a file)::

    {"seed": 7, "faults": [
        {"kind": "delay-read", "p": 0.05, "delay": 0.01},
        {"kind": "drop-connection", "p": 0.01, "after": 20},
        {"kind": "crash-process", "at": 100}
    ]}

``p`` (or ``probability``) is the per-event firing probability;
``after`` suppresses a rule for the first N events of its scope;
``at`` (or ``at_request``) fires a rule exactly once, on the Nth
request the process has seen (1-based) — the deterministic form the
crash tests pin.  Every rule draws from ``Random("seed/index/kind")``,
so rules are independent streams: adding a rule never shifts another
rule's decisions.
"""

from __future__ import annotations

import json
import os
import random
from typing import Any, List, Optional, Tuple, Union

__all__ = ["FAULT_KINDS", "FaultRule", "FaultPlan", "FaultSpecError",
           "parse_fault_spec", "faults_from_env", "FAULTS_ENV"]

#: Environment variable holding a fault spec (JSON text or ``@file``).
FAULTS_ENV = "REPRO_FAULTS"

#: kind -> injection point ("accept" | "request" | "response").
FAULT_KINDS = {
    "refuse-accept": "accept",
    "drop-connection": "request",
    "delay-read": "request",
    "crash-process": "request",
    "delay-write": "response",
    "truncate-line": "response",
}


class FaultSpecError(ValueError):
    """A fault spec that does not parse or validate."""


class FaultRule:
    """One fault: a kind plus when it fires."""

    __slots__ = ("kind", "point", "probability", "delay", "after",
                 "at_request")

    def __init__(self, kind: str, probability: float = 1.0,
                 delay: float = 0.01, after: int = 0,
                 at_request: Optional[int] = None) -> None:
        if kind not in FAULT_KINDS:
            raise FaultSpecError(
                "unknown fault kind %r (known: %s)"
                % (kind, ", ".join(sorted(FAULT_KINDS))))
        if not (0.0 <= probability <= 1.0):
            raise FaultSpecError("probability must be in [0, 1], got %r"
                                 % (probability,))
        if delay < 0:
            raise FaultSpecError("delay must be >= 0, got %r" % (delay,))
        if at_request is not None and at_request < 1:
            raise FaultSpecError("'at' is a 1-based request number, "
                                 "got %r" % (at_request,))
        self.kind = kind
        self.point = FAULT_KINDS[kind]
        self.probability = probability
        self.delay = delay
        self.after = after
        self.at_request = at_request

    @classmethod
    def from_obj(cls, obj: dict) -> "FaultRule":
        if not isinstance(obj, dict):
            raise FaultSpecError("each fault must be an object, got %r"
                                 % (obj,))
        known = {"kind", "p", "probability", "delay", "after", "at",
                 "at_request"}
        unknown = set(obj) - known
        if unknown:
            raise FaultSpecError("unknown fault field(s) %s (known: %s)"
                                 % (sorted(unknown), sorted(known)))
        if "kind" not in obj:
            raise FaultSpecError("a fault needs a 'kind'")
        probability = obj.get("p", obj.get("probability", 1.0))
        at_request = obj.get("at", obj.get("at_request"))
        try:
            return cls(kind=str(obj["kind"]),
                       probability=float(probability),
                       delay=float(obj.get("delay", 0.01)),
                       after=int(obj.get("after", 0)),
                       at_request=(None if at_request is None
                                   else int(at_request)))
        except (TypeError, ValueError) as error:
            if isinstance(error, FaultSpecError):
                raise
            raise FaultSpecError("malformed fault %r: %s" % (obj, error))

    def to_obj(self) -> dict:
        obj: dict = {"kind": self.kind}
        if self.at_request is not None:
            obj["at"] = self.at_request
        else:
            obj["p"] = self.probability
        if self.point in ("request", "response") and \
                self.kind.startswith("delay"):
            obj["delay"] = self.delay
        if self.after:
            obj["after"] = self.after
        return obj


class FaultPlan:
    """A seeded set of :class:`FaultRule`\\ s with per-rule RNG streams.

    Decision methods are called by :class:`LineServer` at the three
    injection points; each returns the actions to apply.  All state
    mutation happens on the server's (single) event loop thread, so no
    locking is needed; determinism holds for any fixed arrival order
    of events.
    """

    def __init__(self, rules: List[FaultRule], seed: int = 0) -> None:
        self.seed = seed
        self.rules = list(rules)
        self._rngs = [random.Random("%d/%d/%s" % (seed, index, rule.kind))
                      for index, rule in enumerate(self.rules)]
        self.accepts_seen = 0
        self.requests_seen = 0
        self.responses_seen = 0
        self.injected: dict = {}

    # -- spec I/O ------------------------------------------------------------

    @classmethod
    def from_obj(cls, obj: Union[dict, list]) -> "FaultPlan":
        if isinstance(obj, list):  # bare rule list: seed defaults to 0
            obj = {"faults": obj}
        if not isinstance(obj, dict):
            raise FaultSpecError("fault spec must be an object or a "
                                 "list of faults, got %r" % (obj,))
        unknown = set(obj) - {"seed", "faults"}
        if unknown:
            raise FaultSpecError("unknown spec field(s) %s"
                                 % sorted(unknown))
        raw_rules = obj.get("faults")
        if not isinstance(raw_rules, list) or not raw_rules:
            raise FaultSpecError("fault spec needs a non-empty 'faults' "
                                 "list")
        try:
            seed = int(obj.get("seed", 0))
        except (TypeError, ValueError):
            raise FaultSpecError("'seed' must be an integer, got %r"
                                 % (obj.get("seed"),))
        return cls([FaultRule.from_obj(rule) for rule in raw_rules],
                   seed=seed)

    def to_obj(self) -> dict:
        return {"seed": self.seed,
                "faults": [rule.to_obj() for rule in self.rules]}

    def describe(self) -> dict:
        """Config + live counters, for the ``stats`` op."""
        return {
            "seed": self.seed,
            "rules": [rule.to_obj() for rule in self.rules],
            "accepts_seen": self.accepts_seen,
            "requests_seen": self.requests_seen,
            "injected": dict(self.injected),
        }

    # -- decisions -----------------------------------------------------------

    def _fires(self, index: int, rule: FaultRule, event_number: int) -> bool:
        """Does ``rule`` fire on its scope's ``event_number`` (1-based)?

        Probabilistic rules draw exactly one sample per event — fired
        or not — so their stream stays aligned with the event sequence.
        """
        if rule.at_request is not None:
            return event_number == rule.at_request
        sample = self._rngs[index].random()
        if event_number <= rule.after:
            return False
        return sample < rule.probability

    def _record(self, kind: str) -> None:
        self.injected[kind] = self.injected.get(kind, 0) + 1

    def on_accept(self) -> bool:
        """True when the just-accepted connection must be refused."""
        self.accepts_seen += 1
        refuse = False
        for index, rule in enumerate(self.rules):
            if rule.point != "accept":
                continue
            if self._fires(index, rule, self.accepts_seen):
                refuse = True
        if refuse:
            self._record("refuse-accept")
        return refuse

    def on_request(self) -> List[Tuple[str, float]]:
        """Actions for the request just read: ``[(kind, delay), ...]``
        with ``crash-process`` first, then ``delay-read``, then
        ``drop-connection`` — the order the server applies them."""
        self.requests_seen += 1
        fired = []
        for index, rule in enumerate(self.rules):
            if rule.point != "request":
                continue
            if self._fires(index, rule, self.requests_seen):
                fired.append((rule.kind, rule.delay))
                self._record(rule.kind)
        order = {"crash-process": 0, "delay-read": 1,
                 "drop-connection": 2}
        fired.sort(key=lambda action: order[action[0]])
        return fired

    def on_response(self) -> Tuple[float, bool]:
        """(delay_seconds, truncate) for the response about to be
        written."""
        self.responses_seen += 1
        delay = 0.0
        truncate = False
        for index, rule in enumerate(self.rules):
            if rule.point != "response":
                continue
            if self._fires(index, rule, self.responses_seen):
                if rule.kind == "delay-write":
                    delay += rule.delay
                    self._record("delay-write")
                else:
                    truncate = True
                    self._record("truncate-line")
        return delay, truncate

    @staticmethod
    def crash() -> None:
        """Die the hard way — SIGKILL, no cleanup, no flushes: exactly
        the failure shape supervision must recover from."""
        import signal
        try:
            os.kill(os.getpid(), signal.SIGKILL)
        except (OSError, AttributeError):  # non-POSIX fallback
            os._exit(137)


def parse_fault_spec(text: str) -> FaultPlan:
    """A :class:`FaultPlan` from inline JSON or ``@path`` to a JSON
    file (the ``--faults`` / ``REPRO_FAULTS`` surface)."""
    text = text.strip()
    if text.startswith("@"):
        path = text[1:]
        try:
            with open(path, "r", encoding="utf-8") as handle:
                text = handle.read()
        except OSError as error:
            raise FaultSpecError("cannot read fault spec file %r: %s"
                                 % (path, error))
    try:
        obj = json.loads(text)
    except ValueError as error:
        raise FaultSpecError("fault spec is not valid JSON: %s" % error)
    return FaultPlan.from_obj(obj)


def faults_from_env(environ: Optional[Any] = None) -> Optional[FaultPlan]:
    """The plan configured via ``REPRO_FAULTS``, or None."""
    environ = os.environ if environ is None else environ
    text = environ.get(FAULTS_ENV)
    if not text:
        return None
    return parse_fault_spec(text)
